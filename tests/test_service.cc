/**
 * @file
 * Tests for the study service layer: the content-addressed
 * ResultCache, the StudyService request handling (transport-free via
 * handle(), and over real loopback sockets), backpressure, and the
 * determinism contract (byte-identical responses, cached or not, at
 * any jobs count). The socket tests also run under ThreadSanitizer
 * (scripts/check.sh builds this binary in the TSan tree).
 */

#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "accubench/protocol.hh"
#include "device/registry.hh"
#include "fault/fault.hh"
#include "report/json.hh"
#include "report/spec_json.hh"
#include "sampling/sampler.hh"
#include "store/result_cache.hh"
#include "service/service.hh"
#include "sim/logging.hh"

using namespace pvar;

namespace
{

/** A one-unit study body that runs in a few hundredths of a second. */
const char *kUnitBody =
    R"({"device": "SD-805:unit-b", "iterations": 1})";

/** Quiet logging for the duration of one test. */
class QuietLog
{
  public:
    QuietLog() : _prev(setLogLevel(LogLevel::Quiet)) {}
    ~QuietLog() { setLogLevel(_prev); }

  private:
    LogLevel _prev;
};

StudyConfig
fastStudyConfig()
{
    StudyConfig cfg;
    cfg.iterations = 1;
    return cfg;
}

/** The smallest interesting fleet: one built-in base, two units. */
std::vector<RegistryEntry>
tinyFleet()
{
    const RegistryEntry &base = DeviceRegistry::builtin().at("SD-805");
    RegistryEntry entry = base;
    entry.units = {base.units.at(0), base.units.at(1)};
    return {entry};
}

std::string
runTinyFleet(const StudyConfig &cfg)
{
    std::vector<RegistryEntry> fleet = tinyFleet();
    std::vector<const RegistryEntry *> entries;
    for (const RegistryEntry &e : fleet)
        entries.push_back(&e);
    return toJson(runStudy(entries, cfg));
}

std::string
writeTempFile(const std::string &name, const std::string &content)
{
    std::string path = testing::TempDir() + "/" + name;
    std::ofstream f(path);
    f << content;
    return path;
}

} // namespace

// ---------------------------------------------------------------------
// Content-addressed result cache.
// ---------------------------------------------------------------------

TEST(ResultCacheKey, DistinguishesEveryInput)
{
    const RegistryEntry &entry = DeviceRegistry::builtin().at("SD-805");
    ExperimentConfig cfg;

    std::string base = experimentKeyText(entry, 0, cfg);
    EXPECT_NE(base, experimentKeyText(entry, 1, cfg));

    ExperimentConfig other = cfg;
    other.iterations = cfg.iterations + 1;
    EXPECT_NE(base, experimentKeyText(entry, 0, other));

    other = cfg;
    other.mode = cfg.mode == WorkloadMode::Unconstrained
                     ? WorkloadMode::FixedFrequency
                     : WorkloadMode::Unconstrained;
    EXPECT_NE(base, experimentKeyText(entry, 0, other));

    const RegistryEntry &sibling =
        DeviceRegistry::builtin().at("SD-810");
    EXPECT_NE(base, experimentKeyText(sibling, 0, cfg));

    // Same inputs, same bytes: the key is a pure function.
    EXPECT_EQ(base, experimentKeyText(entry, 0, cfg));
    EXPECT_EQ(contentDigest(base), contentDigest(base));
    EXPECT_NE(contentDigest(base), contentDigest(base + " "));
    EXPECT_EQ(contentDigest(base).size(), 32u);
}

TEST(ResultCacheTest, HitsReturnTheStoredResult)
{
    const RegistryEntry &entry = DeviceRegistry::builtin().at("SD-805");
    ExperimentConfig cfg;
    ResultCache cache(8);

    int computes = 0;
    auto compute = [&]() {
        ++computes;
        ExperimentResult r;
        r.unitId = "probe";
        return r;
    };

    ExperimentResult cold = cache.getOrCompute(entry, 0, cfg, compute);
    ExperimentResult warm = cache.getOrCompute(entry, 0, cfg, compute);
    EXPECT_EQ(computes, 1);
    EXPECT_EQ(cold.unitId, "probe");
    EXPECT_EQ(warm.unitId, "probe");

    ResultCacheStats s = cache.stats();
    EXPECT_EQ(s.hits, 1u);
    EXPECT_EQ(s.misses, 1u);
    EXPECT_EQ(s.entries, 1u);

    // A different unit is a different key.
    cache.getOrCompute(entry, 1, cfg, compute);
    EXPECT_EQ(computes, 2);
}

TEST(ResultCacheTest, LruBoundsTheFootprint)
{
    const RegistryEntry &entry = DeviceRegistry::builtin().at("SD-800");
    ExperimentConfig cfg;
    ResultCache cache(2);
    auto compute = []() { return ExperimentResult{}; };

    ASSERT_GE(entry.units.size(), 3u);
    cache.getOrCompute(entry, 0, cfg, compute);
    cache.getOrCompute(entry, 1, cfg, compute);
    // Touch 0 so 1 is the LRU victim when 2 is inserted.
    cache.getOrCompute(entry, 0, cfg, compute);
    cache.getOrCompute(entry, 2, cfg, compute);

    ResultCacheStats s = cache.stats();
    EXPECT_EQ(s.entries, 2u);
    EXPECT_EQ(s.evictions, 1u);
    EXPECT_EQ(s.capacity, 2u);

    // 0 survived, 1 was evicted.
    std::uint64_t misses = s.misses;
    cache.getOrCompute(entry, 0, cfg, compute);
    EXPECT_EQ(cache.stats().misses, misses);
    cache.getOrCompute(entry, 1, cfg, compute);
    EXPECT_EQ(cache.stats().misses, misses + 1);
}

TEST(ResultCacheTest, ColdAndWarmStudiesAreByteIdentical)
{
    QuietLog quiet;
    ResultCache cache(64);

    StudyConfig cfg = fastStudyConfig();
    cfg.cache = &cache;
    std::string cold = runTinyFleet(cfg);
    ResultCacheStats after_cold = cache.stats();
    EXPECT_EQ(after_cold.hits, 0u);
    EXPECT_EQ(after_cold.misses, 4u); // 2 units x 2 modes

    std::string warm = runTinyFleet(cfg);
    ResultCacheStats after_warm = cache.stats();
    EXPECT_EQ(after_warm.hits, 4u);
    EXPECT_EQ(after_warm.misses, 4u);
    EXPECT_EQ(cold, warm);

    // An uncached run and any jobs count produce the same bytes.
    StudyConfig plain = fastStudyConfig();
    EXPECT_EQ(runTinyFleet(plain), cold);
    plain.jobs = 4;
    EXPECT_EQ(runTinyFleet(plain), cold);
    cfg.jobs = 4;
    EXPECT_EQ(runTinyFleet(cfg), cold);
}

// ---------------------------------------------------------------------
// Transport-free request handling.
// ---------------------------------------------------------------------

namespace
{

ServiceConfig
testServiceConfig()
{
    ServiceConfig cfg;
    cfg.port = 0;
    cfg.study.iterations = 1;
    return cfg;
}

HttpRequest
makeRequest(const std::string &method, const std::string &path,
            const std::string &body = "")
{
    HttpRequest req;
    req.method = method;
    req.path = path;
    req.version = "HTTP/1.1";
    req.body = body;
    return req;
}

} // namespace

TEST(StudyServiceHandle, RoutesAndRejects)
{
    QuietLog quiet;
    StudyService svc(testServiceConfig());

    EXPECT_EQ(svc.handle(makeRequest("GET", "/nope")).status, 404);
    EXPECT_EQ(svc.handle(makeRequest("POST", "/devices")).status, 405);
    EXPECT_EQ(svc.handle(makeRequest("GET", "/study")).status, 405);
    EXPECT_EQ(svc.handle(makeRequest("GET", "/healthz")).status, 200);
}

TEST(StudyServiceHandle, DevicesListsTheBuiltinRegistry)
{
    QuietLog quiet;
    StudyService svc(testServiceConfig());
    HttpResponse resp = svc.handle(makeRequest("GET", "/devices"));
    EXPECT_EQ(resp.status, 200);
    EXPECT_EQ(resp.body,
              fleetToJson(DeviceRegistry::builtin().entries()) + "\n");
}

TEST(StudyServiceHandle, MalformedStudyBodiesAre400s)
{
    QuietLog quiet;
    StudyService svc(testServiceConfig());
    auto post = [&](const std::string &body) {
        return svc.handle(makeRequest("POST", "/study", body));
    };

    // Truncated JSON: the 400 carries the parse position.
    HttpResponse resp = post(R"({"fleet": [)");
    EXPECT_EQ(resp.status, 400);
    EXPECT_NE(resp.body.find("line 1"), std::string::npos) << resp.body;

    // Wrong types.
    EXPECT_EQ(post(R"({"fleet": 42})").status, 400);
    EXPECT_EQ(post(R"([{"base": 17}])").status, 400);
    EXPECT_EQ(post(R"({"device": 3})").status, 400);
    EXPECT_EQ(post(R"({"soc": "SD-805", "iterations": 1.5})").status,
              400);
    EXPECT_EQ(post(R"({"soc": "SD-805", "iterations": 0})").status,
              400);
    EXPECT_EQ(post(R"({"soc": "SD-805", "ambient": "warm"})").status,
              400);

    // Missing keys and unknown names.
    EXPECT_EQ(post(R"({"fleet": [ {} ]})").status, 400);
    EXPECT_EQ(post(R"({"fleet": [ {"spec": {}} ]})").status, 400);
    EXPECT_EQ(post(R"({"fleet": [ {"base": "SD-9999",
        "units": [{"id": "u0"}]} ]})").status, 400);
    EXPECT_EQ(post(R"({"soc": "SD-9999"})").status, 400);
    EXPECT_EQ(post(R"({"device": "nope-0"})").status, 400);
    EXPECT_EQ(post(R"({"soc": "SD-805", "device": "dev-363"})").status,
              400);

    // The error body is itself valid JSON with an "error" member.
    JsonValue doc;
    std::string error;
    ASSERT_TRUE(parseJson(resp.body, doc, error)) << resp.body;
    EXPECT_TRUE(doc.at("error").isString());

    // Bad requests are counted, none of them were served studies.
    EXPECT_GE(svc.stats().badRequests, 1u);
}

TEST(StudyServiceHandle, StudyMatchesTheCliBytes)
{
    QuietLog quiet;
    StudyService svc(testServiceConfig());
    HttpResponse resp =
        svc.handle(makeRequest("POST", "/study", kUnitBody));
    ASSERT_EQ(resp.status, 200) << resp.body;

    // The same study through the library: pvar_study --device
    // SD-805:unit-b --iterations 1 --json emits these bytes.
    StudyConfig cfg = fastStudyConfig();
    UnitRef ref = DeviceRegistry::builtin().findUnit("SD-805:unit-b");
    ASSERT_NE(ref.entry, nullptr);
    std::vector<SocStudy> studies{
        runUnitStudy(*ref.entry, ref.unitIndex, cfg)};
    EXPECT_EQ(resp.body, toJson(studies) + "\n");

    // Identical body again: served from the cache, identical bytes.
    HttpResponse again =
        svc.handle(makeRequest("POST", "/study", kUnitBody));
    EXPECT_EQ(again.body, resp.body);
    ResultCacheStats cs = svc.cacheStats();
    EXPECT_EQ(cs.misses, 2u); // 1 unit x 2 modes
    EXPECT_EQ(cs.hits, 2u);
}

TEST(StudyServiceHandle, CrowdMatchesTheCliBytesAndRejects)
{
    QuietLog quiet;
    StudyService svc(testServiceConfig());

    // Method and body validation first.
    EXPECT_EQ(svc.handle(makeRequest("GET", "/crowd")).status, 405);
    EXPECT_EQ(svc.handle(makeRequest("POST", "/crowd", "{}")).status,
              400);
    EXPECT_EQ(svc.handle(makeRequest("POST", "/crowd",
                                     R"({"dies": 0})"))
                  .status,
              400);
    EXPECT_EQ(svc.handle(makeRequest("POST", "/crowd",
                                     R"({"dies": 64, "ci_target": -1})"))
                  .status,
              400);
    EXPECT_EQ(svc.handle(makeRequest("POST", "/crowd",
                                     R"({"dies": 64, "soc": "SD-9999"})"))
                  .status,
              400);

    HttpResponse resp = svc.handle(
        makeRequest("POST", "/crowd", R"({"dies": 64, "strata": 4})"));
    ASSERT_EQ(resp.status, 200) << resp.body;

    // The same study through the library: the response is exactly the
    // bytes `pvar_study --crowd 64 --strata 4` prints.
    CrowdStudyConfig cfg;
    cfg.population.size = 64;
    cfg.strata = 4;
    CrowdStudyResult r = runCrowdStudy(cfg);
    EXPECT_EQ(resp.body, crowdStudyJson(r) + "\n");
}

// ---------------------------------------------------------------------
// The real server, over loopback sockets.
// ---------------------------------------------------------------------

TEST(StudyServiceSocket, ServesAndDrains)
{
    QuietLog quiet;
    StudyService svc(testServiceConfig());
    svc.start();
    ASSERT_GT(svc.port(), 0);

    HttpResponse health =
        httpRequest("127.0.0.1", svc.port(), "GET", "/healthz");
    EXPECT_EQ(health.status, 200);
    JsonValue doc;
    std::string error;
    ASSERT_TRUE(parseJson(health.body, doc, error)) << health.body;
    EXPECT_EQ(doc.at("status").asString(), "ok");
    EXPECT_EQ(doc.at("queue").at("capacity").asNumber(), 8.0);

    HttpResponse devices =
        httpRequest("127.0.0.1", svc.port(), "GET", "/devices");
    EXPECT_EQ(devices.body,
              fleetToJson(DeviceRegistry::builtin().entries()) + "\n");

    HttpResponse bad = httpRequest("127.0.0.1", svc.port(), "POST",
                                   "/study", "{not json");
    EXPECT_EQ(bad.status, 400);

    svc.stop();
    svc.stop(); // idempotent
}

TEST(StudyServiceSocket, ConcurrentStudiesAreByteIdentical)
{
    QuietLog quiet;
    ServiceConfig cfg = testServiceConfig();
    cfg.workers = 4;
    StudyService svc(cfg);
    svc.start();

    // Hammer the same study from several clients at once; every
    // response must be 200 with exactly the same bytes.
    constexpr int clients = 6;
    std::vector<std::string> bodies(clients);
    std::vector<int> statuses(clients, 0);
    std::vector<std::thread> threads;
    for (int c = 0; c < clients; ++c) {
        threads.emplace_back([&, c]() {
            HttpResponse resp = httpRequest(
                "127.0.0.1", svc.port(), "POST", "/study", kUnitBody);
            statuses[c] = resp.status;
            bodies[c] = resp.body;
        });
    }
    for (std::thread &t : threads)
        t.join();

    for (int c = 0; c < clients; ++c) {
        EXPECT_EQ(statuses[c], 200) << bodies[c];
        EXPECT_EQ(bodies[c], bodies[0]);
    }

    // The cache deduplicated: 2 experiments computed at most once per
    // concurrently-racing client, and the counters add up.
    ResultCacheStats cs = svc.cacheStats();
    EXPECT_EQ(cs.hits + cs.misses,
              static_cast<std::uint64_t>(2 * clients));
    EXPECT_GE(cs.misses, 2u);
    EXPECT_EQ(svc.stats().served,
              static_cast<std::uint64_t>(clients));
    svc.stop();
}

TEST(StudyServiceSocket, BackpressureAnswers429)
{
    QuietLog quiet;
    ServiceConfig cfg = testServiceConfig();
    cfg.workers = 1;
    cfg.queueDepth = 1;
    cfg.retryAfterSec = 7;
    StudyService svc(cfg);
    svc.pauseWorkersForTest();
    svc.start();

    // With the single worker paused, one queued study fills the queue.
    std::thread queued([&]() {
        HttpResponse resp = httpRequest("127.0.0.1", svc.port(), "POST",
                                        "/study", kUnitBody);
        EXPECT_EQ(resp.status, 200);
    });
    while (svc.stats().queued < 1)
        std::this_thread::yield();

    HttpResponse overflow = httpRequest("127.0.0.1", svc.port(), "POST",
                                        "/study", kUnitBody);
    EXPECT_EQ(overflow.status, 429);
    EXPECT_EQ(overflow.header("retry-after"), "7");
    EXPECT_EQ(svc.stats().rejected, 1u);

    // Cheap endpoints still answer while the queue is full.
    EXPECT_EQ(
        httpRequest("127.0.0.1", svc.port(), "GET", "/healthz").status,
        200);

    svc.resumeWorkersForTest();
    queued.join();
    svc.stop();
}

// ---------------------------------------------------------------------
// Malformed fleet files through the CLI path (loadFleetFile fatals,
// naming the file and position).
// ---------------------------------------------------------------------

TEST(FleetFileErrors, TruncatedJsonDiesWithPosition)
{
    testing::FLAGS_gtest_death_test_style = "threadsafe";
    std::string path = writeTempFile("pvar_truncated_fleet.json",
                                     "{\"fleet\": [\n  {\"base\":");
    EXPECT_EXIT(loadFleetFile(path), testing::ExitedWithCode(1),
                "pvar_truncated_fleet.json.*line 2");
}

TEST(FleetFileErrors, MissingKeysDieCleanly)
{
    testing::FLAGS_gtest_death_test_style = "threadsafe";
    std::string path = writeTempFile("pvar_missing_keys_fleet.json",
                                     R"({"fleet": [ {} ]})");
    EXPECT_EXIT(loadFleetFile(path), testing::ExitedWithCode(1),
                "pvar_missing_keys_fleet.json");
}

TEST(FleetFileErrors, WrongTypesDieCleanly)
{
    testing::FLAGS_gtest_death_test_style = "threadsafe";
    std::string path = writeTempFile("pvar_wrong_types_fleet.json",
                                     R"({"fleet": "not an array"})");
    EXPECT_EXIT(loadFleetFile(path), testing::ExitedWithCode(1),
                "pvar_wrong_types_fleet.json");
}

// ---------------------------------------------------------------------
// Durable store behind the service: warm restarts.
// ---------------------------------------------------------------------

namespace
{

/** True if @p resp carries the header @p name with value @p value. */
bool
hasHeader(const HttpResponse &resp, const std::string &name,
          const std::string &value)
{
    for (const auto &[k, v] : resp.headers)
        if (k == name && v == value)
            return true;
    return false;
}

} // namespace

TEST(StudyServiceDurable, WarmRestartServesIdenticalBytesFromTheStore)
{
    QuietLog quiet;
    std::string dir = testing::TempDir() + "/pvar_svc_store";
    std::remove((dir + "/experiments.log").c_str());

    std::string cold_body;
    {
        ServiceConfig cfg = testServiceConfig();
        cfg.cacheDir = dir;
        StudyService svc(cfg);
        HttpResponse cold =
            svc.handle(makeRequest("POST", "/study", kUnitBody));
        ASSERT_EQ(cold.status, 200) << cold.body;
        cold_body = cold.body;
        EXPECT_EQ(svc.storeStats().misses, 2u); // 1 unit x 2 modes
        EXPECT_EQ(svc.storeStats().records, 2u);
    }

    // A restarted service on the same directory answers from the
    // store: no recomputation, byte-identical response.
    ServiceConfig cfg = testServiceConfig();
    cfg.cacheDir = dir;
    StudyService svc(cfg);
    HttpResponse warm =
        svc.handle(makeRequest("POST", "/study", kUnitBody));
    ASSERT_EQ(warm.status, 200) << warm.body;
    EXPECT_EQ(warm.body, cold_body);
    EXPECT_EQ(svc.storeStats().hits, 2u);
    EXPECT_EQ(svc.storeStats().misses, 0u);

    // The bytes still match the CLI path exactly.
    StudyConfig study = fastStudyConfig();
    UnitRef ref = DeviceRegistry::builtin().findUnit("SD-805:unit-b");
    ASSERT_NE(ref.entry, nullptr);
    EXPECT_EQ(warm.body,
              toJson(std::vector<SocStudy>{
                  runUnitStudy(*ref.entry, ref.unitIndex, study)}) +
                  "\n");

    // /healthz reports the warm store.
    HttpResponse hz = svc.handle(makeRequest("GET", "/healthz"));
    JsonValue doc;
    std::string error;
    ASSERT_TRUE(parseJson(hz.body, doc, error)) << hz.body;
    EXPECT_EQ(doc.at("store").at("records").asNumber(), 2.0);
    EXPECT_EQ(doc.at("store").at("recovered_records").asNumber(), 2.0);
    EXPECT_EQ(doc.at("store").at("hits").asNumber(), 2.0);
    EXPECT_EQ(doc.at("store").at("truncated_bytes").asNumber(), 0.0);
}

TEST(StudyServiceHandle, MetadataEndpointsAreNoStore)
{
    QuietLog quiet;
    StudyService svc(testServiceConfig());

    // Both metadata endpoints change across restarts and store
    // mutations; intermediaries must not cache them.
    EXPECT_TRUE(hasHeader(svc.handle(makeRequest("GET", "/healthz")),
                          "Cache-Control", "no-store"));
    EXPECT_TRUE(hasHeader(svc.handle(makeRequest("GET", "/devices")),
                          "Cache-Control", "no-store"));

    // Without --cache-dir, /healthz reports a null store.
    HttpResponse hz = svc.handle(makeRequest("GET", "/healthz"));
    JsonValue doc;
    std::string error;
    ASSERT_TRUE(parseJson(hz.body, doc, error)) << hz.body;
    EXPECT_TRUE(doc.at("store").isNull());
}

// ---------------------------------------------------------------------
// Fault injection: load shedding and degraded health.
// ---------------------------------------------------------------------

namespace
{

/** Install a plan for one test; always uninstalls on scope exit. */
class SvcPlanGuard
{
  public:
    explicit SvcPlanGuard(FaultPlan plan)
    {
        installFaultPlan(
            std::make_shared<FaultPlan>(std::move(plan)));
    }
    ~SvcPlanGuard() { clearFaultPlan(); }
};

} // namespace

TEST(StudyServiceFaults, PermanentFaultShedsWith503AndRetryAfter)
{
    QuietLog quiet;
    ServiceConfig cfg = testServiceConfig();
    cfg.retryAfterSec = 7;
    StudyService svc(cfg);

    FaultPlan plan(1);
    FaultRule rule;
    rule.site = FaultSite::ExperimentRun;
    rule.kind = FaultKind::Permanent;
    rule.probability = 1.0;
    plan.addRule(rule);
    SvcPlanGuard guard{std::move(plan)};

    HttpResponse shed =
        svc.handle(makeRequest("POST", "/study", kUnitBody));
    EXPECT_EQ(shed.status, 503);
    EXPECT_TRUE(hasHeader(shed, "Retry-After", "7")) << shed.body;

    // Metadata endpoints keep answering while studies shed.
    EXPECT_EQ(svc.handle(makeRequest("GET", "/healthz")).status, 200);
}

TEST(StudyServiceFaults, HealthzReportsDegradedStore)
{
    QuietLog quiet;
    std::string dir = testing::TempDir() + "/pvar_svc_degraded";
    std::remove((dir + "/experiments.log").c_str());
    std::remove((dir + "/store.degraded").c_str());

    ServiceConfig cfg = testServiceConfig();
    cfg.cacheDir = dir;
    StudyService svc(cfg);

    // Healthy at startup.
    {
        HttpResponse hz = svc.handle(makeRequest("GET", "/healthz"));
        JsonValue doc;
        std::string error;
        ASSERT_TRUE(parseJson(hz.body, doc, error)) << hz.body;
        EXPECT_EQ(doc.at("status").asString(), "ok");
    }

    // A study under an injected append fault still answers 200 —
    // the result is computed, just not persisted — and /healthz
    // flips to degraded with the failure counters visible.
    FaultPlan plan(1);
    FaultRule rule;
    rule.site = FaultSite::StoreAppend;
    rule.kind = FaultKind::Io;
    rule.every = 1;
    plan.addRule(rule);
    SvcPlanGuard guard{std::move(plan)};

    HttpResponse study =
        svc.handle(makeRequest("POST", "/study", kUnitBody));
    EXPECT_EQ(study.status, 200) << study.body;

    HttpResponse hz = svc.handle(makeRequest("GET", "/healthz"));
    JsonValue doc;
    std::string error;
    ASSERT_TRUE(parseJson(hz.body, doc, error)) << hz.body;
    EXPECT_EQ(doc.at("status").asString(), "degraded");
    EXPECT_TRUE(doc.at("store").at("degraded").asBool());
    EXPECT_GE(doc.at("store").at("failed_appends").asNumber(), 1.0);
}

// ---------------------------------------------------------------------
// The protocol-feature matrix: keep-alive, pipelining, slow-loris
// timeouts, mid-stream aborts, and per-client fair admission, all over
// real sockets (and all re-run under TSan by scripts/check.sh).
// ---------------------------------------------------------------------

namespace
{

/** Poll @p pred every couple of ms until true or @p timeout_ms. */
template <typename Pred>
bool
waitFor(Pred pred, int timeout_ms = 5000)
{
    auto deadline = std::chrono::steady_clock::now() +
                    std::chrono::milliseconds(timeout_ms);
    while (!pred()) {
        if (std::chrono::steady_clock::now() >= deadline)
            return false;
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    return true;
}

} // namespace

TEST(StudyServiceProtocol, KeepAliveReusesOneConnection)
{
    QuietLog quiet;
    StudyService svc(testServiceConfig());
    svc.start();

    HttpClient client("127.0.0.1", svc.port());
    std::string error;
    std::string first_body;
    for (int i = 0; i < 3; ++i) {
        ASSERT_TRUE(client.send("GET", "/devices", "", false, error))
            << error;
        HttpResponse resp;
        ASSERT_TRUE(client.readResponse(resp, error)) << error;
        EXPECT_EQ(resp.status, 200);
        if (i == 0)
            first_body = resp.body;
        else
            EXPECT_EQ(resp.body, first_body);
    }
    EXPECT_EQ(client.reuses(), 2u);

    // /healthz on the same connection reports the loop's own view:
    // one connection accepted, reused for every request after its
    // first, nothing aborted or malformed.
    ASSERT_TRUE(client.send("GET", "/healthz", "", false, error))
        << error;
    HttpResponse health;
    ASSERT_TRUE(client.readResponse(health, error)) << error;
    JsonValue doc;
    ASSERT_TRUE(parseJson(health.body, doc, error)) << health.body;
    const JsonValue &server = doc.at("server");
    EXPECT_EQ(server.at("backend").asString(),
              pollerBackendName(defaultPollerBackend()));
    EXPECT_EQ(server.at("open").asNumber(), 1.0);
    EXPECT_EQ(server.at("accepted").asNumber(), 1.0);
    EXPECT_GE(server.at("keepalive_reuses").asNumber(), 3.0);
    EXPECT_EQ(server.at("in_flight").asNumber(), 0.0);
    EXPECT_EQ(server.at("aborted").asNumber(), 0.0);
    EXPECT_EQ(server.at("parse_errors").asNumber(), 0.0);
    EXPECT_GT(server.at("bytes_in").asNumber(), 0.0);
    EXPECT_GT(server.at("bytes_out").asNumber(), 0.0);

    svc.stop();
    EXPECT_EQ(svc.loopStats().keepAliveReuses, 3u);
}

TEST(StudyServiceProtocol, PipelinedRequestsAnswerInOrder)
{
    QuietLog quiet;
    StudyService svc(testServiceConfig());
    svc.start();

    // Two requests in one write; the responses must come back in
    // request order whatever the server's internal scheduling does.
    HttpClient client("127.0.0.1", svc.port());
    std::string error;
    ASSERT_TRUE(client.sendRaw("GET /devices HTTP/1.1\r\n\r\n"
                               "GET /healthz HTTP/1.1\r\n\r\n",
                               error))
        << error;

    HttpResponse devices;
    ASSERT_TRUE(client.readResponse(devices, error)) << error;
    EXPECT_EQ(devices.status, 200);
    EXPECT_EQ(devices.body,
              fleetToJson(DeviceRegistry::builtin().entries()) + "\n");

    HttpResponse health;
    ASSERT_TRUE(client.readResponse(health, error)) << error;
    EXPECT_EQ(health.status, 200);
    JsonValue doc;
    ASSERT_TRUE(parseJson(health.body, doc, error)) << health.body;
    EXPECT_EQ(doc.at("status").asString(), "ok");

    svc.stop();
}

TEST(StudyServiceProtocol, SlowLorisConnectionsTimeOut)
{
    QuietLog quiet;
    ServiceConfig cfg = testServiceConfig();
    cfg.idleTimeoutMs = 200;
    StudyService svc(cfg);
    svc.start();

    // Dribble a partial request head and stall: the idle deadline
    // must close the connection rather than hold the slot forever.
    HttpClient loris("127.0.0.1", svc.port());
    std::string error;
    ASSERT_TRUE(loris.sendRaw("GET /devices HTTP/1.1\r\nX-Drib", error))
        << error;
    HttpResponse never;
    EXPECT_FALSE(loris.readResponse(never, error));
    EXPECT_TRUE(waitFor([&] {
        return svc.loopStats().timeoutsFired >= 1;
    })) << "idle timeout never fired";

    // The server is unharmed: a well-behaved client still gets served.
    EXPECT_EQ(
        httpRequest("127.0.0.1", svc.port(), "GET", "/devices").status,
        200);
    svc.stop();
}

TEST(StudyServiceProtocol, MidStreamAbortIsCountedNotServed)
{
    QuietLog quiet;
    ServiceConfig cfg = testServiceConfig();
    cfg.workers = 1;
    StudyService svc(cfg);
    svc.pauseWorkersForTest();
    svc.start();

    // Queue a study, then abort the connection (RST) while the worker
    // still owes the response.
    HttpClient client("127.0.0.1", svc.port());
    std::string error;
    ASSERT_TRUE(
        client.send("POST", "/study", kUnitBody, false, error))
        << error;
    ASSERT_TRUE(waitFor([&] { return svc.stats().queued == 1; }));
    client.abortConnection();
    ASSERT_TRUE(waitFor([&] { return svc.loopStats().open == 0; }))
        << "loop never noticed the abort";

    // The worker finishes the now-orphaned study; the response is
    // dropped and counted, not delivered to a recycled connection.
    svc.resumeWorkersForTest();
    EXPECT_TRUE(waitFor([&] { return svc.loopStats().aborted == 1; }))
        << "aborted response never counted";
    svc.stop();
}

TEST(StudyServiceProtocol, FairShareAdmissionIsPerClient)
{
    QuietLog quiet;
    ServiceConfig cfg = testServiceConfig();
    cfg.workers = 1;
    cfg.queueDepth = 8;
    cfg.retryAfterSec = 1;
    StudyService svc(cfg);
    svc.pauseWorkersForTest();
    svc.start();

    // Client A (127.0.0.1) floods six studies into the queue.
    constexpr int kFlood = 6;
    std::vector<std::thread> flood;
    for (int i = 0; i < kFlood; ++i) {
        flood.emplace_back([&] {
            HttpResponse resp = httpRequest(
                "127.0.0.1", svc.port(), "POST", "/study", kUnitBody);
            EXPECT_EQ(resp.status, 200) << resp.body;
        });
    }
    ASSERT_TRUE(waitFor([&] { return svc.stats().queued == kFlood; }));

    // Client B (bound to 127.0.0.2, a distinct loopback identity)
    // is admitted: with two clients sharing depth 8 its share is 4
    // and it holds nothing yet.
    HttpClient b1("127.0.0.1", svc.port());
    std::string error;
    ASSERT_TRUE(b1.connect(error, "127.0.0.2")) << error;
    ASSERT_TRUE(b1.send("POST", "/study", kUnitBody, false, error))
        << error;
    ASSERT_TRUE(
        waitFor([&] { return svc.stats().queued == kFlood + 1; }));

    // A holds 6 of its share of 4: rejected for fairness while the
    // queue still has room (7 of 8), with a backlog-derived
    // Retry-After (7 queued / 1 worker = 7s).
    HttpResponse unfair = httpRequest("127.0.0.1", svc.port(), "POST",
                                      "/study", kUnitBody);
    EXPECT_EQ(unfair.status, 429);
    EXPECT_NE(unfair.body.find("fair queue share"), std::string::npos)
        << unfair.body;
    EXPECT_EQ(unfair.header("retry-after"), "7");

    // B's second study is still admitted (it holds 1 of 4), filling
    // the queue...
    HttpClient b2("127.0.0.1", svc.port());
    ASSERT_TRUE(b2.connect(error, "127.0.0.2")) << error;
    ASSERT_TRUE(b2.send("POST", "/study", kUnitBody, false, error))
        << error;
    ASSERT_TRUE(
        waitFor([&] { return svc.stats().queued == kFlood + 2; }));

    // ...so the next rejection is queue-full, not fairness.
    HttpResponse full = httpRequest("127.0.0.1", svc.port(), "POST",
                                    "/study", kUnitBody);
    EXPECT_EQ(full.status, 429);
    EXPECT_NE(full.body.find("queue full"), std::string::npos)
        << full.body;

    // Drain: everyone admitted gets a 200 with identical bytes.
    svc.resumeWorkersForTest();
    HttpResponse r1, r2;
    EXPECT_TRUE(b1.readResponse(r1, error)) << error;
    EXPECT_TRUE(b2.readResponse(r2, error)) << error;
    EXPECT_EQ(r1.status, 200);
    EXPECT_EQ(r2.status, 200);
    EXPECT_EQ(r1.body, r2.body);
    for (std::thread &t : flood)
        t.join();
    EXPECT_EQ(svc.stats().rejected, 2u);
    svc.stop();
}
