#include "thermal/rc_network.hh"

#include <algorithm>
#include <cmath>
#include <limits>

#include "sim/logging.hh"

namespace pvar
{

const char *
solverKindName(SolverKind kind)
{
    return kind == SolverKind::Fast ? "fast" : "stepped";
}

bool
parseSolverKind(const std::string &text, SolverKind &out)
{
    if (text == "stepped") {
        out = SolverKind::Stepped;
        return true;
    }
    if (text == "fast") {
        out = SolverKind::Fast;
        return true;
    }
    return false;
}

ThermalNodeId
ThermalNetwork::addNode(const std::string &node_name,
                        JoulesPerKelvin capacitance, Celsius initial)
{
    if (capacitance.value() <= 0.0)
        fatal("ThermalNetwork: node '%s' needs positive capacitance",
              node_name.c_str());
    _nodes.push_back(
        Node{node_name, capacitance.value(), initial.value(), 0.0});
    _adj.emplace_back();
    _topologyDirty = true;
    return _nodes.size() - 1;
}

ThermalNodeId
ThermalNetwork::addBoundary(const std::string &node_name, Celsius temp)
{
    _nodes.push_back(Node{node_name, 0.0, temp.value(), 0.0});
    _adj.emplace_back();
    _topologyDirty = true;
    return _nodes.size() - 1;
}

void
ThermalNetwork::connect(ThermalNodeId a, ThermalNodeId b, WattsPerKelvin g)
{
    checkNode(a);
    checkNode(b);
    if (a == b)
        fatal("ThermalNetwork: self edge on '%s'", _nodes[a].name.c_str());
    if (g.value() <= 0.0)
        fatal("ThermalNetwork: non-positive conductance between '%s' "
              "and '%s'",
              _nodes[a].name.c_str(), _nodes[b].name.c_str());
    _edges.push_back(Edge{a, b, g.value()});
    _adj[a].emplace_back(b, g.value());
    _adj[b].emplace_back(a, g.value());
    _topologyDirty = true;
}

void
ThermalNetwork::setPower(ThermalNodeId node, Watts p)
{
    checkNode(node);
    _nodes[node].power = p.value();
}

Watts
ThermalNetwork::power(ThermalNodeId node) const
{
    checkNode(node);
    return Watts(_nodes[node].power);
}

Celsius
ThermalNetwork::temperature(ThermalNodeId node) const
{
    checkNode(node);
    return Celsius(_nodes[node].temp);
}

void
ThermalNetwork::setTemperature(ThermalNodeId node, Celsius t)
{
    checkNode(node);
    _nodes[node].temp = t.value();
}

bool
ThermalNetwork::isBoundary(ThermalNodeId node) const
{
    checkNode(node);
    return _nodes[node].capacitance <= 0.0;
}

const std::string &
ThermalNetwork::nodeName(ThermalNodeId node) const
{
    checkNode(node);
    return _nodes[node].name;
}

void
ThermalNetwork::checkNode(ThermalNodeId node) const
{
    if (node >= _nodes.size())
        panic("ThermalNetwork: node id %zu out of range (%zu nodes)", node,
              _nodes.size());
}

double
ThermalNetwork::minTimeConstant() const
{
    double tau = std::numeric_limits<double>::infinity();
    for (ThermalNodeId i = 0; i < _nodes.size(); ++i) {
        if (_nodes[i].capacitance <= 0.0)
            continue;
        double g_total = 0.0;
        for (const auto &[other, g] : _adj[i])
            g_total += g;
        if (g_total > 0.0)
            tau = std::min(tau, _nodes[i].capacitance / g_total);
    }
    return tau;
}

void
ThermalNetwork::refreshTopologyCache()
{
    _minTau = minTimeConstant();
    _invCap.resize(_nodes.size());
    for (ThermalNodeId i = 0; i < _nodes.size(); ++i) {
        _invCap[i] = _nodes[i].capacitance > 0.0
                         ? 1.0 / _nodes[i].capacitance
                         : 0.0; // boundary: dT is forced to zero
    }
    _flux.assign(_nodes.size(), 0.0);
    // Substep counts depend on tau; re-derive on next use.
    _substepCache[0] = SubstepEntry{};
    _substepCache[1] = SubstepEntry{};
    _substepMru = 0;
    _fastDirty = true;
    _topologyDirty = false;
}

int
ThermalNetwork::substepsFor(double h_total)
{
    if (_substepCache[_substepMru].dtSec == h_total)
        return _substepCache[_substepMru].substeps;
    int other = 1 - _substepMru;
    if (_substepCache[other].dtSec == h_total) {
        _substepMru = other;
        return _substepCache[other].substeps;
    }
    int substeps = 1;
    if (std::isfinite(_minTau) && _minTau > 0.0)
        substeps = std::max(
            1,
            static_cast<int>(std::ceil(h_total / (0.5 * _minTau))));
    _substepMru = other; // evict the least recently used entry
    _substepCache[other] = SubstepEntry{h_total, substeps};
    return substeps;
}

void
ThermalNetwork::step(Time dt)
{
    if (_nodes.empty() || dt <= Time::zero())
        return;

    if (_topologyDirty)
        refreshTopologyCache();

    // Explicit Euler is stable for h < tau_min; halve further for
    // accuracy headroom. The substep count only changes with the
    // topology or the step size, both cached.
    double h_total = dt.toSec();
    int substeps = substepsFor(h_total);
    double h = h_total / substeps;

    const std::size_t n_nodes = _nodes.size();
    double *flux = _flux.data();
    for (int s = 0; s < substeps; ++s) {
        std::fill(_flux.begin(), _flux.end(), 0.0);
        for (const auto &e : _edges) {
            double q = e.conductance * (_nodes[e.a].temp - _nodes[e.b].temp);
            flux[e.a] -= q;
            flux[e.b] += q;
        }
        for (ThermalNodeId i = 0; i < n_nodes; ++i) {
            // _invCap is 0 for boundaries, which holds their
            // temperature without a branch.
            _nodes[i].temp +=
                (flux[i] + _nodes[i].power) * h * _invCap[i];
        }
    }
}

bool
ThermalNetwork::fastReady()
{
    if (_topologyDirty)
        refreshTopologyCache();
    if (_fastDirty) {
        // Never rebuild in place while another network aliases this
        // solver: give the others their decomposition, take a fresh one.
        if (!_fast || _fast.use_count() > 1)
            _fast = std::make_shared<FastThermalSolver>();
        std::vector<double> caps(_nodes.size());
        for (ThermalNodeId i = 0; i < _nodes.size(); ++i)
            caps[i] = _nodes[i].capacitance;
        std::vector<FastSolverEdge> edges;
        edges.reserve(_edges.size());
        for (const Edge &e : _edges)
            edges.push_back(FastSolverEdge{e.a, e.b, e.conductance});
        _fastUsable = _fast->build(caps, edges);
        _fastTemps.resize(_nodes.size());
        _fastPowers.resize(_nodes.size());
        _fastDirty = false;
    }
    return _fastUsable;
}

bool
ThermalNetwork::adoptFastSolver(ThermalNetwork &donor)
{
    if (this == &donor)
        return donor.fastReady();
    if (!donor.fastReady())
        return false;
    if (_topologyDirty)
        refreshTopologyCache();
    if (_nodes.size() != donor._nodes.size() ||
        _edges.size() != donor._edges.size())
        return false;
    for (ThermalNodeId i = 0; i < _nodes.size(); ++i) {
        if (_nodes[i].capacitance != donor._nodes[i].capacitance)
            return false;
    }
    for (std::size_t i = 0; i < _edges.size(); ++i) {
        if (_edges[i].a != donor._edges[i].a ||
            _edges[i].b != donor._edges[i].b ||
            _edges[i].conductance != donor._edges[i].conductance)
            return false;
    }
    _fast = donor._fast;
    _fastUsable = true;
    _fastTemps.resize(_nodes.size());
    _fastPowers.resize(_nodes.size());
    _fastDirty = false;
    return true;
}

void
ThermalNetwork::gatherFastState()
{
    for (ThermalNodeId i = 0; i < _nodes.size(); ++i) {
        _fastTemps[i] = _nodes[i].temp;
        _fastPowers[i] = _nodes[i].power;
    }
}

void
ThermalNetwork::fastAdvance(Time dt)
{
    if (_nodes.empty() || dt <= Time::zero())
        return;
    if (!fastReady()) {
        step(dt);
        return;
    }
    gatherFastState();
    _fast->advance(_fastTemps, _fastPowers, dt.toSec());
    for (ThermalNodeId i = 0; i < _nodes.size(); ++i) {
        if (_nodes[i].capacitance > 0.0)
            _nodes[i].temp = _fastTemps[i];
    }
}

void
ThermalNetwork::fastAdvanceBatch(ThermalNetwork *const *nets,
                                 std::size_t count, Time dt)
{
    if (count == 0 || dt <= Time::zero())
        return;
    bool shared = true;
    for (std::size_t i = 0; i < count && shared; ++i) {
        if (nets[i]->_nodes.empty() || !nets[i]->fastReady() ||
            nets[i]->_fast != nets[0]->_fast)
            shared = false;
    }
    if (!shared || count == 1) {
        for (std::size_t i = 0; i < count; ++i)
            nets[i]->fastAdvance(dt);
        return;
    }

    FastThermalSolver &solver = *nets[0]->_fast;
    std::size_t n_nodes = nets[0]->_nodes.size();
    // Planar [node * count + die] gather so the solver's die loop is
    // contiguous. thread_local: one cohort runs per worker thread.
    static thread_local std::vector<double> temps, powers;
    temps.resize(n_nodes * count);
    powers.resize(n_nodes * count);
    for (std::size_t d = 0; d < count; ++d) {
        const std::vector<Node> &nodes = nets[d]->_nodes;
        for (ThermalNodeId i = 0; i < n_nodes; ++i) {
            temps[i * count + d] = nodes[i].temp;
            powers[i * count + d] = nodes[i].power;
        }
    }
    solver.advanceBatch(temps.data(), powers.data(), count, dt.toSec());
    for (std::size_t d = 0; d < count; ++d) {
        std::vector<Node> &nodes = nets[d]->_nodes;
        for (ThermalNodeId i = 0; i < n_nodes; ++i) {
            if (nodes[i].capacitance > 0.0)
                nodes[i].temp = temps[i * count + d];
        }
    }
}

Celsius
ThermalNetwork::fastPreview(ThermalNodeId node, Time dt)
{
    checkNode(node);
    if (dt <= Time::zero() || !fastReady())
        return Celsius(_nodes[node].temp);
    gatherFastState();
    _fast->advance(_fastTemps, _fastPowers, dt.toSec());
    return Celsius(_fastTemps[node]);
}

bool
ThermalNetwork::solveSteadyState(double tolerance, int max_iters,
                                 double *final_residual)
{
    // Seed from the direct eigendecomposed solve when available: the
    // Gauss-Seidel sweeps below then act as verification and polish,
    // converging in a sweep or two with a residual no worse than the
    // purely iterative path's.
    if (!_nodes.empty() && fastReady()) {
        gatherFastState();
        if (_fast->steadyState(_fastTemps, _fastPowers)) {
            for (ThermalNodeId i = 0; i < _nodes.size(); ++i) {
                if (_nodes[i].capacitance > 0.0)
                    _nodes[i].temp = _fastTemps[i];
            }
        }
    }

    double worst = 0.0;
    for (int iter = 0; iter < max_iters; ++iter) {
        worst = 0.0;
        for (ThermalNodeId i = 0; i < _nodes.size(); ++i) {
            if (_nodes[i].capacitance <= 0.0)
                continue;
            double g_total = 0.0;
            double g_weighted = 0.0;
            for (const auto &[other, g] : _adj[i]) {
                g_total += g;
                g_weighted += g * _nodes[other].temp;
            }
            if (g_total <= 0.0)
                continue; // isolated node with power would diverge
            double updated = (g_weighted + _nodes[i].power) / g_total;
            worst = std::max(worst, std::fabs(updated - _nodes[i].temp));
            _nodes[i].temp = updated;
        }
        if (worst < tolerance) {
            if (final_residual)
                *final_residual = worst;
            return true;
        }
    }
    if (final_residual)
        *final_residual = worst;
    warn("ThermalNetwork: steady-state solve did not converge "
         "(residual %.3g K after %d iterations, tolerance %.3g K)",
         worst, max_iters, tolerance);
    return false;
}

Watts
ThermalNetwork::heatOutflow(ThermalNodeId node) const
{
    checkNode(node);
    double q = 0.0;
    for (const auto &[other, g] : _adj[node])
        q += g * (_nodes[node].temp - _nodes[other].temp);
    return Watts(q);
}

} // namespace pvar
