#include "report/figure.hh"

#include <algorithm>
#include <cmath>

#include "sim/logging.hh"
#include "sim/strfmt.hh"

namespace pvar
{

BarFigure::BarFigure(std::string title, std::string unit)
    : _title(std::move(title)), _unit(std::move(unit))
{
}

void
BarFigure::addBar(const std::string &label, double value)
{
    _bars.emplace_back(label, value);
}

std::vector<double>
BarFigure::values() const
{
    std::vector<double> out;
    out.reserve(_bars.size());
    for (const auto &[label, v] : _bars)
        out.push_back(v);
    return out;
}

std::string
BarFigure::render(bool normalize_to_max) const
{
    if (_bars.empty())
        fatal("BarFigure '%s': no bars", _title.c_str());

    double best = _bars.front().second;
    for (const auto &[label, v] : _bars)
        best = normalize_to_max ? std::max(best, v) : std::min(best, v);
    if (best == 0.0)
        best = 1.0;

    std::size_t label_w = 0;
    for (const auto &[label, v] : _bars)
        label_w = std::max(label_w, label.size());

    std::string out = strfmt("%s [%s]\n", _title.c_str(), _unit.c_str());
    for (const auto &[label, v] : _bars) {
        double norm = v / best;
        auto bar_len = static_cast<std::size_t>(
            std::llround(std::min(norm, 2.0) * 30.0));
        out += strfmt("  %-*s %12.2f  %6.3f  %s\n",
                      static_cast<int>(label_w), label.c_str(), v, norm,
                      std::string(bar_len, '#').c_str());
    }
    return out;
}

std::string
figureHeader(const std::string &figure_id, const std::string &paper_claim)
{
    std::string bar(70, '=');
    return strfmt("%s\n== %s\n== paper: %s\n%s\n", bar.c_str(),
                  figure_id.c_str(), paper_claim.c_str(), bar.c_str());
}

std::string
traceSeriesCsv(const Trace &trace,
               const std::vector<std::string> &channels,
               std::size_t max_points)
{
    std::string out = "channel,time_s,value\n";
    for (const auto &name : channels) {
        if (!trace.hasChannel(name)) {
            warn("traceSeriesCsv: missing channel '%s'", name.c_str());
            continue;
        }
        const auto &samples = trace.channel(name).samples();
        std::size_t stride =
            std::max<std::size_t>(1, samples.size() / max_points);
        for (std::size_t i = 0; i < samples.size(); i += stride) {
            out += strfmt("%s,%.3f,%.6g\n", name.c_str(),
                          samples[i].when.toSec(), samples[i].value);
        }
    }
    return out;
}

} // namespace pvar
