#include "thermal/fast_solver.hh"

#include <algorithm>
#include <cmath>

namespace pvar
{

namespace
{

/**
 * Cyclic Jacobi eigendecomposition of a symmetric matrix.
 *
 * `a` is row-major n*n and is destroyed (diagonal becomes the
 * eigenvalues); `q` receives the orthonormal eigenvectors as columns.
 * Thermal networks have a handful of nodes, so the O(n^3)-per-sweep
 * cost is irrelevant and the unconditional numerical robustness of
 * Jacobi (symmetric input, guaranteed orthogonality) is what matters.
 */
bool
jacobiEigen(std::vector<double> &a, std::size_t n, std::vector<double> &q)
{
    q.assign(n * n, 0.0);
    for (std::size_t i = 0; i < n; ++i)
        q[i * n + i] = 1.0;
    if (n < 2)
        return true;

    double scale = 0.0;
    for (std::size_t i = 0; i < n * n; ++i)
        scale = std::max(scale, std::fabs(a[i]));
    if (scale == 0.0)
        return true; // zero matrix: already diagonal

    const double tol = 1e-15 * scale;
    for (int sweep = 0; sweep < 100; ++sweep) {
        double off = 0.0;
        for (std::size_t p = 0; p < n; ++p)
            for (std::size_t r = p + 1; r < n; ++r)
                off = std::max(off, std::fabs(a[p * n + r]));
        if (off <= tol)
            return true;

        for (std::size_t p = 0; p < n; ++p) {
            for (std::size_t r = p + 1; r < n; ++r) {
                double apr = a[p * n + r];
                if (std::fabs(apr) <= tol)
                    continue;
                double app = a[p * n + p];
                double arr = a[r * n + r];
                double theta = (arr - app) / (2.0 * apr);
                double t = (theta >= 0.0 ? 1.0 : -1.0) /
                           (std::fabs(theta) +
                            std::sqrt(theta * theta + 1.0));
                double c = 1.0 / std::sqrt(t * t + 1.0);
                double s = t * c;

                for (std::size_t k = 0; k < n; ++k) {
                    double akp = a[k * n + p];
                    double akr = a[k * n + r];
                    a[k * n + p] = c * akp - s * akr;
                    a[k * n + r] = s * akp + c * akr;
                }
                for (std::size_t k = 0; k < n; ++k) {
                    double apk = a[p * n + k];
                    double ark = a[r * n + k];
                    a[p * n + k] = c * apk - s * ark;
                    a[r * n + k] = s * apk + c * ark;
                }
                for (std::size_t k = 0; k < n; ++k) {
                    double qkp = q[k * n + p];
                    double qkr = q[k * n + r];
                    q[k * n + p] = c * qkp - s * qkr;
                    q[k * n + r] = s * qkp + c * qkr;
                }
            }
        }
    }
    return false; // did not converge (never seen for symmetric input)
}

/** (1 - exp(-l*dt)) / l, continuous through l -> 0. */
double
phiOf(double lambda, double dt_sec)
{
    double x = lambda * dt_sec;
    if (x < 1e-12)
        return dt_sec * (1.0 - 0.5 * x);
    return -std::expm1(-x) / lambda;
}

} // namespace

bool
FastThermalSolver::build(const std::vector<double> &capacitances,
                         const std::vector<FastSolverEdge> &edges)
{
    _ready = false;
    _interior.clear();
    _phiMemo.clear();
    _phiNext = 0;

    std::vector<std::size_t> to_interior(capacitances.size(),
                                         static_cast<std::size_t>(-1));
    for (std::size_t i = 0; i < capacitances.size(); ++i) {
        if (capacitances[i] > 0.0) {
            to_interior[i] = _interior.size();
            _interior.push_back(i);
        }
    }
    std::size_t n = _interior.size();
    if (n == 0)
        return false;

    _edges = edges;
    _invSqrtC.resize(n);
    for (std::size_t i = 0; i < n; ++i)
        _invSqrtC[i] = 1.0 / std::sqrt(capacitances[_interior[i]]);

    // Scaled interior Laplacian S = C^(-1/2) L C^(-1/2). The diagonal
    // sums conductance to every neighbor (boundaries included); only
    // interior-interior pairs contribute off-diagonal coupling.
    std::vector<double> s(n * n, 0.0);
    for (const FastSolverEdge &e : _edges) {
        std::size_t ia = to_interior[e.a];
        std::size_t ib = to_interior[e.b];
        if (ia != static_cast<std::size_t>(-1))
            s[ia * n + ia] +=
                e.conductance * _invSqrtC[ia] * _invSqrtC[ia];
        if (ib != static_cast<std::size_t>(-1))
            s[ib * n + ib] +=
                e.conductance * _invSqrtC[ib] * _invSqrtC[ib];
        if (ia != static_cast<std::size_t>(-1) &&
            ib != static_cast<std::size_t>(-1)) {
            double coupling =
                e.conductance * _invSqrtC[ia] * _invSqrtC[ib];
            s[ia * n + ib] -= coupling;
            s[ib * n + ia] -= coupling;
        }
    }

    if (!jacobiEigen(s, n, _eigenvectors))
        return false;
    _eigenvalues.resize(n);
    for (std::size_t k = 0; k < n; ++k) {
        // S is positive semidefinite; clamp the rounding of zero modes.
        _eigenvalues[k] = std::max(0.0, s[k * n + k]);
    }

    _flux.assign(capacitances.size(), 0.0);
    _w.resize(n);
    _y.resize(n);
    _ready = true;
    return true;
}

const std::vector<double> &
FastThermalSolver::phiFor(double dt_sec)
{
    for (const PhiEntry &e : _phiMemo) {
        if (e.dtSec == dt_sec)
            return e.phi;
    }
    std::size_t n = _interior.size();
    PhiEntry entry;
    entry.dtSec = dt_sec;
    entry.phi.resize(n);
    for (std::size_t k = 0; k < n; ++k)
        entry.phi[k] = phiOf(_eigenvalues[k], dt_sec);
    if (_phiMemo.size() < 16) {
        _phiMemo.push_back(std::move(entry));
        return _phiMemo.back().phi;
    }
    // Round-robin replacement: the working set of interval lengths is
    // tiny; this only guards against pathological dt churn.
    std::size_t slot = _phiNext;
    _phiNext = (_phiNext + 1) % _phiMemo.size();
    _phiMemo[slot] = std::move(entry);
    return _phiMemo[slot].phi;
}

void
FastThermalSolver::netInflow(const std::vector<double> &temps,
                             const std::vector<double> &powers)
{
    std::fill(_flux.begin(), _flux.end(), 0.0);
    for (const FastSolverEdge &e : _edges) {
        double q = e.conductance * (temps[e.a] - temps[e.b]);
        _flux[e.a] -= q;
        _flux[e.b] += q;
    }
    std::size_t n = _interior.size();
    for (std::size_t i = 0; i < n; ++i) {
        std::size_t full = _interior[i];
        _w[i] = _invSqrtC[i] * (_flux[full] + powers[full]);
    }
}

void
FastThermalSolver::applyModal(std::vector<double> &temps,
                              const std::vector<double> &factors)
{
    // y = diag(factors) Q^T w, then dT = C^(-1/2) Q y.
    std::size_t n = _interior.size();
    for (std::size_t k = 0; k < n; ++k) {
        double acc = 0.0;
        for (std::size_t i = 0; i < n; ++i)
            acc += _eigenvectors[i * n + k] * _w[i];
        _y[k] = acc * factors[k];
    }
    for (std::size_t i = 0; i < n; ++i) {
        double acc = 0.0;
        for (std::size_t k = 0; k < n; ++k)
            acc += _eigenvectors[i * n + k] * _y[k];
        temps[_interior[i]] += _invSqrtC[i] * acc;
    }
}

void
FastThermalSolver::advance(std::vector<double> &temps,
                           const std::vector<double> &powers,
                           double dt_sec)
{
    if (!_ready || dt_sec <= 0.0)
        return;
    netInflow(temps, powers);
    applyModal(temps, phiFor(dt_sec));
}

void
FastThermalSolver::advanceBatch(double *temps, const double *powers,
                                std::size_t b, double dt_sec)
{
    if (!_ready || dt_sec <= 0.0 || b == 0)
        return;
    const std::vector<double> &phi = phiFor(dt_sec);
    std::size_t full = _flux.size();
    std::size_t n = _interior.size();

    // Net inflow per (node, die). The die loop is innermost throughout
    // so each die repeats the scalar path's op sequence verbatim.
    _bFlux.assign(full * b, 0.0);
    for (const FastSolverEdge &e : _edges) {
        const double *ta = temps + e.a * b;
        const double *tb = temps + e.b * b;
        double *fa = _bFlux.data() + e.a * b;
        double *fb = _bFlux.data() + e.b * b;
        for (std::size_t d = 0; d < b; ++d) {
            double q = e.conductance * (ta[d] - tb[d]);
            fa[d] -= q;
            fb[d] += q;
        }
    }
    _bW.resize(n * b);
    for (std::size_t i = 0; i < n; ++i) {
        std::size_t fi = _interior[i];
        const double *fx = _bFlux.data() + fi * b;
        const double *pw = powers + fi * b;
        double *w = _bW.data() + i * b;
        for (std::size_t d = 0; d < b; ++d)
            w[d] = _invSqrtC[i] * (fx[d] + pw[d]);
    }

    // y = diag(phi) Q^T w, then dT = C^(-1/2) Q y.
    _bY.resize(n * b);
    for (std::size_t k = 0; k < n; ++k) {
        double *y = _bY.data() + k * b;
        for (std::size_t d = 0; d < b; ++d)
            y[d] = 0.0;
        for (std::size_t i = 0; i < n; ++i) {
            double qik = _eigenvectors[i * n + k];
            const double *w = _bW.data() + i * b;
            for (std::size_t d = 0; d < b; ++d)
                y[d] += qik * w[d];
        }
        for (std::size_t d = 0; d < b; ++d)
            y[d] *= phi[k];
    }
    _bAcc.resize(b);
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t d = 0; d < b; ++d)
            _bAcc[d] = 0.0;
        for (std::size_t k = 0; k < n; ++k) {
            double qik = _eigenvectors[i * n + k];
            const double *y = _bY.data() + k * b;
            for (std::size_t d = 0; d < b; ++d)
                _bAcc[d] += qik * y[d];
        }
        double *t = temps + _interior[i] * b;
        for (std::size_t d = 0; d < b; ++d)
            t[d] += _invSqrtC[i] * _bAcc[d];
    }
}

bool
FastThermalSolver::steadyState(std::vector<double> &temps,
                               const std::vector<double> &powers)
{
    if (!_ready)
        return false;
    std::size_t n = _interior.size();
    double lambda_max = 0.0;
    for (double l : _eigenvalues)
        lambda_max = std::max(lambda_max, l);
    std::vector<double> inv(n);
    for (std::size_t k = 0; k < n; ++k) {
        // A near-zero mode means some component has no conductive
        // path to a boundary: its temperature grows without bound
        // under power, so there is no steady state to jump to.
        if (_eigenvalues[k] <= 1e-12 * std::max(lambda_max, 1.0))
            return false;
        inv[k] = 1.0 / _eigenvalues[k];
    }
    netInflow(temps, powers);
    applyModal(temps, inv);
    return true;
}

} // namespace pvar
