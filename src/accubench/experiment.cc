#include "accubench/experiment.hh"

#include <memory>

#include "power/monsoon.hh"
#include "sim/logging.hh"

namespace pvar
{

ExperimentResult
runExperiment(Device &device, const ExperimentConfig &cfg)
{
    ExperimentResult result;
    result.unitId = device.unitId();
    result.model = device.model();
    result.socName = device.socName();

    Simulator sim(cfg.dt);
    Thermabox box(cfg.thermabox);

    // Chamber first, device second: the box pins the ambient the
    // device sees during the same step.
    sim.add(&box);
    sim.add(&device);
    box.placeDevice(&device);

    // -- Solver -------------------------------------------------------------
    if (cfg.solver == SolverKind::Fast) {
        sim.setEventDriven(true);
        device.setThermalSolver(SolverKind::Fast);
        box.setSolver(SolverKind::Fast);
    }

    // -- Power source -------------------------------------------------------
    std::unique_ptr<Monsoon> monsoon;
    switch (cfg.supply) {
      case SupplyChoice::MonsoonNominal:
        monsoon = std::make_unique<Monsoon>(device.config().battery.nominal);
        device.attachExternalSupply(monsoon.get());
        break;
      case SupplyChoice::MonsoonExplicit:
        monsoon = std::make_unique<Monsoon>(cfg.monsoonVoltage);
        device.attachExternalSupply(monsoon.get());
        break;
      case SupplyChoice::Battery:
        device.attachExternalSupply(nullptr);
        device.battery().setStateOfCharge(cfg.batterySoc);
        break;
    }

    // -- DVFS mode ----------------------------------------------------------
    if (cfg.mode == WorkloadMode::FixedFrequency)
        device.setFixedFrequency(cfg.fixedFrequency);
    else
        device.setPerformanceMode();

    device.resetExperimentState();
    device.setSuspendAllowed(false);
    if (cfg.soakFirst)
        device.soakTo(box.airTemp());
    device.attachTrace(&result.trace);

    // -- Confirm the chamber is in band (the app's first step). -------------
    bool stable = sim.runUntilCondition([&box] { return box.stable(); },
                                        sim.now() + Time::minutes(30));
    if (!stable)
        warn("runExperiment: thermabox failed to stabilize; "
             "proceeding anyway");

    // -- N back-to-back iterations. ------------------------------------------
    for (int i = 0; i < cfg.iterations; ++i) {
        IterationResult it = runAccubenchIteration(
            sim, device, cfg.accubench, &result.trace);
        result.iterations.push_back(it);
    }

    // -- Restore the device for the next experiment. -------------------------
    device.attachTrace(nullptr);
    device.attachExternalSupply(nullptr);
    device.setPerformanceMode();
    device.setThermalSolver(SolverKind::Stepped);

    return result;
}

} // namespace pvar
