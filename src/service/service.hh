/**
 * @file
 * The long-running study service behind pvar_served.
 *
 * Exposes the registry/fleet/ACCUBENCH machinery over HTTP:
 *
 *   GET  /healthz  liveness + cache/queue/server/request counters
 *   GET  /devices  the built-in registry as a fleet document
 *   POST /study    run the protocol; body is either a fleet document
 *                  (the same schema pvar_study --fleet reads) or a
 *                  single-target request:
 *                    {"soc": "SD-805"} | {"device": "dev-363"}
 *                  optionally with "iterations" and "ambient"
 *                  overrides (fleet documents accept them as wrapper
 *                  keys next to "fleet").
 *   POST /crowd    characterize an N-die population by stratified
 *                  sampling (sampling/sampler.hh); body:
 *                    {"dies": 100000}
 *                  optionally with "strata", "ci_target", "seed",
 *                  "iterations", "soc", and "solver" overrides. The
 *                  response is exactly the bytes pvar_study --crowd
 *                  prints for the same parameters.
 *
 * Architecture (since the event-loop rewrite): ONE loop thread
 * (service/eventloop.hh) owns every socket — accept, parse, write —
 * with keep-alive, pipelining, chunked streaming for large bodies,
 * and idle/slow-loris timeouts. The loop calls this class's handler
 * for each parsed request; cheap endpoints answer inline on the loop
 * thread, while /study and /crowd go through a *bounded* queue to a
 * small pool of study workers (each of which fans its experiments out
 * onto the PR 1 parallel scheduler) and come back to the loop over
 * its wakeup pipe. A full queue answers 429 with a Retry-After header
 * derived from the backlog — backpressure instead of unbounded
 * memory. Admission is additionally fair per client: when several
 * client addresses compete, no one address may hold more than its
 * share (queueDepth / clients) of the queue, so one greedy tenant
 * cannot starve the rest while the queue still has room. stop()
 * drains: no new connections, queued studies finish, in-flight
 * responses flush, workers and loop join.
 *
 * Determinism contract: byte-identical request bodies produce
 * byte-identical response bodies — cached or not, at any jobs count.
 * POST /study responses are exactly the bytes `pvar_study --json`
 * emits for the same input, so clients can diff CLI and service
 * output directly (chunked transfer framing is transport-level; the
 * de-chunked body is the identical bytes). All experiment work is
 * routed through the content-addressed ResultCache, so identical
 * study units are simulated once per cache lifetime.
 */

#ifndef PVAR_SERVICE_SERVICE_HH
#define PVAR_SERVICE_SERVICE_HH

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "accubench/protocol.hh"
#include "service/eventloop.hh"
#include "service/http.hh"
#include "store/durable_cache.hh"
#include "store/result_cache.hh"

namespace pvar
{

/** Service deployment knobs. */
struct ServiceConfig
{
    /** Bind address (loopback by default; widen deliberately). */
    std::string host = "127.0.0.1";

    /** Listen port; 0 picks an ephemeral port (see port()). */
    int port = 0;

    /** Study worker threads (concurrent /study jobs). */
    int workers = 2;

    /** Bounded pending-study queue depth; beyond it, 429. */
    std::size_t queueDepth = 8;

    /**
     * Base Retry-After seconds for 429/503. The advertised value
     * scales with the backlog: base * ceil(queued / workers), clamped
     * to [1, 60] — an idle service says "base", a saturated one says
     * roughly how long the queue needs to drain.
     */
    int retryAfterSec = 1;

    /** Open-connection cap; beyond it, accepts answer 503 + close. */
    int maxConns = 256;

    /** Per-connection idle/slow-loris deadline, in ms. */
    int idleTimeoutMs = 5000;

    /** Readiness backend for the event loop. */
    PollerBackend backend = defaultPollerBackend();

    /** Result-cache capacity, in experiments; 0 disables caching. */
    std::size_t cacheEntries = 128;

    /**
     * Durable store directory. When set, results are persisted to an
     * append-only log under this directory and reloaded on restart
     * (warm starts), with the LRU above as the memory layer; empty
     * keeps the cache memory-only. See store/durable_cache.hh.
     */
    std::string cacheDir;

    /** fsync batching for the durable store's record log. */
    int storeSyncEvery = 8;

    /**
     * Base study settings (iterations, ambient, experiment jobs).
     * Per-request "iterations"/"ambient" override a copy.
     */
    StudyConfig study;

    /** Transport limits for each connection. */
    HttpLimits limits;
};

/** Point-in-time counters for /healthz and tests. */
struct ServiceStats
{
    std::uint64_t served = 0;    ///< responses written (any status)
    std::uint64_t rejected = 0;  ///< 429 backpressure responses
    std::uint64_t badRequests = 0; ///< 400 responses
    std::size_t queued = 0;      ///< studies waiting for a worker
    std::uint64_t inFlight = 0;  ///< studies being computed right now
};

class StudyService
{
  public:
    explicit StudyService(ServiceConfig cfg);
    ~StudyService();

    StudyService(const StudyService &) = delete;
    StudyService &operator=(const StudyService &) = delete;

    /**
     * Bind, listen, and spawn the loop + worker threads. Fatal on
     * bind/listen failure (the deployment is unusable).
     */
    void start();

    /**
     * Graceful drain: stop accepting, let queued studies finish and
     * their responses flush, join every thread. Idempotent.
     */
    void stop();

    /** The bound port (useful with cfg.port = 0). */
    int port() const { return _port; }

    ServiceStats stats() const;
    ResultCacheStats cacheStats() const;

    /** Event-loop counters; zeros before start(). */
    HttpLoopStats loopStats() const;

    /** Durable-store counters; zeros when no cacheDir is configured. */
    ExperimentStoreStats storeStats() const;

    /**
     * Pause/resume the study workers. Test hook: with workers paused,
     * queued studies accumulate deterministically so backpressure can
     * be exercised without racing the workers.
     */
    void pauseWorkersForTest();
    void resumeWorkersForTest();

    /** Handle one parsed request (transport-free; tests use this). */
    HttpResponse handle(const HttpRequest &req);

  private:
    struct Job
    {
        HttpServerLoop::Token token;
        std::string body;
        /** Request identity + arrival time for the per-request log. */
        std::string method;
        std::string path;
        /** Peer address, for per-client fair admission. */
        std::string client;
        std::chrono::steady_clock::time_point start;
    };

    ServiceConfig _cfg;
    int _port = 0;
    std::unique_ptr<ResultCache> _cache;
    std::unique_ptr<DurableCache> _durable;
    std::unique_ptr<HttpServerLoop> _loop;

    std::vector<std::thread> _workers;

    mutable std::mutex _mutex;
    std::condition_variable _wake;
    std::deque<Job> _queue;
    /** Queued studies per client address (fair admission). */
    std::unordered_map<std::string, std::size_t> _pendingByClient;
    bool _stopping = false;
    bool _paused = false;

    std::atomic<std::uint64_t> _served{0};
    std::atomic<std::uint64_t> _rejected{0};
    std::atomic<std::uint64_t> _badRequests{0};
    std::atomic<std::uint64_t> _inFlight{0};

    /** Loop-thread callback: route, admit, or reject one request. */
    bool onRequest(const HttpRequest &req, const std::string &client,
                   HttpServerLoop::Token token, HttpResponse &out);

    void workerLoop(int worker_id);

    /** Count + log one finished response (any thread). */
    void finalize(const std::string &method, const std::string &path,
                  const HttpResponse &resp,
                  std::chrono::steady_clock::time_point start);

    /** Backlog-scaled Retry-After value, in seconds. */
    int retryAfterSeconds() const;

    /** The active experiment memoizer: durable, memory, or none. */
    ExperimentCache *activeCache();

    HttpResponse handleHealthz();
    HttpResponse handleDevices();
    HttpResponse handleStudy(const std::string &body);
    HttpResponse handleCrowd(const std::string &body);

    /** Run the study a /study body describes (throws JsonError). */
    std::string runStudyRequest(const std::string &body);

    /** Run the crowd study a /crowd body describes (throws JsonError). */
    std::string runCrowdRequest(const std::string &body);
};

} // namespace pvar

#endif // PVAR_SERVICE_SERVICE_HH
