/**
 * @file
 * Regenerates paper Fig 11: frequency and temperature distributions
 * over time for two Google Pixel units. dev-488 delivers ~7% more
 * performance with a matching mean-frequency advantage — and the
 * counterintuitive part: time-at-temperature alone does not predict
 * who throttles more.
 */

#include <cstdio>

#include "device/catalog.hh"
#include "dist_figure.hh"

using namespace pvar;

int
main()
{
    benchQuiet();
    std::printf("%s", figureHeader(
        "Fig 11: Pixel frequency/temperature distributions",
        "dev-488 +7% performance, +2-7% mean frequency; time at "
        "temperature is NOT sufficient to predict throttling").c_str());

    auto dev488 = makePixel(UnitCorner{"dev-488", -0.90, -0.30, 0.0});
    auto dev653 = makePixel(UnitCorner{"dev-653", +0.90, +0.45, 0.0});

    UnitDistributions a = collectDistributions(
        *dev488, "freq_perf", 1000.0, 2400.0, 74.0);
    UnitDistributions b = collectDistributions(
        *dev653, "freq_perf", 1000.0, 2400.0, 74.0);

    printDistributionFigure("Fig 11", a, b);

    double perf_delta = a.meanScore / b.meanScore - 1.0;
    double freq_delta = a.meanFreqMhz() / b.meanFreqMhz() - 1.0;

    std::printf("\nSHAPE CHECK vs paper:\n");
    shapeCheck(perf_delta > 0.02 && perf_delta < 0.15,
               "dev-488 outperforms dev-653 by " +
                   fmtPercent(perf_delta * 100.0) + " (paper: 7%)");
    shapeCheck(freq_delta > 0.0,
               "the mean-frequency advantage (" +
                   fmtPercent(freq_delta * 100.0) +
                   ") matches the performance direction");
    shapeCheck(std::abs(freq_delta - perf_delta) < 0.05,
               "mean frequency delta tracks the score delta");
    return 0;
}
