#include "stats/summary.hh"

#include <algorithm>
#include <cmath>
#include <limits>

#include "sim/logging.hh"

namespace pvar
{

OnlineSummary::OnlineSummary()
    : _n(0), _mean(0.0), _m2(0.0),
      _min(std::numeric_limits<double>::infinity()),
      _max(-std::numeric_limits<double>::infinity())
{
}

void
OnlineSummary::add(double x)
{
    ++_n;
    double delta = x - _mean;
    _mean += delta / static_cast<double>(_n);
    _m2 += delta * (x - _mean);
    _min = std::min(_min, x);
    _max = std::max(_max, x);
}

double
OnlineSummary::variance() const
{
    if (_n < 2)
        return 0.0;
    return _m2 / static_cast<double>(_n - 1);
}

double
OnlineSummary::stddev() const
{
    return std::sqrt(variance());
}

double
OnlineSummary::rsd() const
{
    if (_mean == 0.0)
        return 0.0;
    return std::fabs(stddev() / _mean);
}

void
OnlineSummary::merge(const OnlineSummary &other)
{
    if (other._n == 0)
        return;
    if (_n == 0) {
        *this = other;
        return;
    }
    double na = static_cast<double>(_n);
    double nb = static_cast<double>(other._n);
    double delta = other._mean - _mean;
    double total = na + nb;
    _mean += delta * nb / total;
    _m2 += other._m2 + delta * delta * na * nb / total;
    _n += other._n;
    _min = std::min(_min, other._min);
    _max = std::max(_max, other._max);
}

OnlineSummary
summarize(const std::vector<double> &values)
{
    OnlineSummary s;
    for (double v : values)
        s.add(v);
    return s;
}

double
relativeSpread(const std::vector<double> &values)
{
    if (values.size() < 2)
        return 0.0;
    auto [mn, mx] = std::minmax_element(values.begin(), values.end());
    if (*mx == 0.0)
        return 0.0;
    return (*mx - *mn) / *mx;
}

double
relativeExcess(const std::vector<double> &values)
{
    if (values.size() < 2)
        return 0.0;
    auto [mn, mx] = std::minmax_element(values.begin(), values.end());
    if (*mn == 0.0)
        return 0.0;
    return (*mx - *mn) / *mn;
}

std::vector<double>
normalizeToMax(const std::vector<double> &values)
{
    std::vector<double> out(values);
    if (values.empty())
        return out;
    double mx = *std::max_element(values.begin(), values.end());
    if (mx == 0.0)
        fatal("normalizeToMax: max value is zero");
    for (double &v : out)
        v /= mx;
    return out;
}

std::vector<double>
normalizeToMin(const std::vector<double> &values)
{
    std::vector<double> out(values);
    if (values.empty())
        return out;
    double mn = *std::min_element(values.begin(), values.end());
    if (mn == 0.0)
        fatal("normalizeToMin: min value is zero");
    for (double &v : out)
        v /= mn;
    return out;
}

double
median(std::vector<double> values)
{
    if (values.empty())
        return 0.0;
    std::sort(values.begin(), values.end());
    std::size_t n = values.size();
    if (n % 2 == 1)
        return values[n / 2];
    return 0.5 * (values[n / 2 - 1] + values[n / 2]);
}

double
percentile(std::vector<double> values, double q)
{
    if (values.empty())
        return 0.0;
    if (q <= 0.0)
        return *std::min_element(values.begin(), values.end());
    if (q >= 100.0)
        return *std::max_element(values.begin(), values.end());
    std::sort(values.begin(), values.end());
    double idx = q / 100.0 * static_cast<double>(values.size() - 1);
    auto lo = static_cast<std::size_t>(idx);
    double frac = idx - static_cast<double>(lo);
    if (lo + 1 >= values.size())
        return values.back();
    return values[lo] * (1.0 - frac) + values[lo + 1] * frac;
}

} // namespace pvar
