/**
 * @file
 * Tests for the thermal governor, cpufreq policies, RBCPR and the
 * input-voltage throttle.
 */

#include <cmath>
#include <gtest/gtest.h>

#include "silicon/process_node.hh"
#include "silicon/variation_model.hh"
#include "soc/cpufreq.hh"
#include "soc/input_voltage_throttle.hh"
#include "soc/rbcpr.hh"
#include "soc/thermal_governor.hh"

namespace pvar
{
namespace
{

ThermalGovernorParams
twoTrips()
{
    ThermalGovernorParams p;
    p.trips = {
        TripPoint{Celsius(76), Celsius(73), MegaHertz(1958)},
        TripPoint{Celsius(80), Celsius(77), MegaHertz(1574)},
    };
    p.shutdowns = {CoreShutdownRule{Celsius(80), Celsius(75), 1}};
    p.pollPeriod = Time::msec(250);
    return p;
}

TEST(ThermalGovernor, NoMitigationWhenCool)
{
    ThermalGovernor g(twoTrips());
    g.update(Time::msec(250), Celsius(60));
    EXPECT_FALSE(g.mitigating());
    EXPECT_EQ(g.freqCap(), ThermalGovernor::unlimited());
    EXPECT_EQ(g.coresForcedOffline(), 0);
}

TEST(ThermalGovernor, TripEngagesAtThreshold)
{
    ThermalGovernor g(twoTrips());
    g.update(Time::msec(250), Celsius(76));
    EXPECT_TRUE(g.mitigating());
    EXPECT_DOUBLE_EQ(g.freqCap().value(), 1958);
}

TEST(ThermalGovernor, DeeperTripWins)
{
    ThermalGovernor g(twoTrips());
    g.update(Time::msec(250), Celsius(81));
    EXPECT_DOUBLE_EQ(g.freqCap().value(), 1574);
    EXPECT_EQ(g.coresForcedOffline(), 1);
}

TEST(ThermalGovernor, HysteresisHoldsUntilClear)
{
    ThermalGovernor g(twoTrips());
    g.update(Time::msec(250), Celsius(77));
    EXPECT_DOUBLE_EQ(g.freqCap().value(), 1958);
    // Cooled below trip but above clear: still capped.
    g.update(Time::msec(500), Celsius(74));
    EXPECT_DOUBLE_EQ(g.freqCap().value(), 1958);
    // Below clear: released.
    g.update(Time::msec(750), Celsius(72));
    EXPECT_FALSE(g.mitigating());
}

TEST(ThermalGovernor, PollPeriodIsRespected)
{
    ThermalGovernor g(twoTrips());
    g.update(Time::msec(250), Celsius(60));
    // A spike between polls is not seen.
    g.update(Time::msec(300), Celsius(90));
    EXPECT_FALSE(g.mitigating());
    g.update(Time::msec(500), Celsius(90));
    EXPECT_TRUE(g.mitigating());
}

TEST(ThermalGovernor, ResetClearsLatches)
{
    ThermalGovernor g(twoTrips());
    g.update(Time::msec(250), Celsius(85));
    EXPECT_TRUE(g.mitigating());
    g.reset();
    EXPECT_FALSE(g.mitigating());
}

TEST(ThermalGovernor, CoreShutdownMatchesPaperFig1)
{
    // "Once thermal limits of 80C are reached, one CPU core is shut
    // down."
    ThermalGovernor g(twoTrips());
    g.update(Time::msec(250), Celsius(80));
    EXPECT_EQ(g.coresForcedOffline(), 1);
    g.update(Time::msec(500), Celsius(76)); // above clear (75)
    EXPECT_EQ(g.coresForcedOffline(), 1);
    g.update(Time::msec(750), Celsius(74)); // below clear
    EXPECT_EQ(g.coresForcedOffline(), 0);
}

TEST(ThermalGovernor, InvalidConfigDies)
{
    ThermalGovernorParams p;
    p.trips = {TripPoint{Celsius(70), Celsius(75), MegaHertz(1000)}};
    EXPECT_DEATH(ThermalGovernor g(p), "");
}

VfTable
ladder()
{
    return VfTable({
        {MegaHertz(300), Volts(0.80)},
        {MegaHertz(960), Volts(0.865)},
        {MegaHertz(1574), Volts(0.965)},
        {MegaHertz(2265), Volts(1.10)},
    });
}

TEST(Cpufreq, PerformancePicksTop)
{
    PerformanceGovernor g;
    EXPECT_EQ(g.desiredIndex(ladder(), 0.0, Time::zero()), 3u);
    EXPECT_EQ(g.desiredIndex(ladder(), 1.0, Time::zero()), 3u);
}

TEST(Cpufreq, UserspacePins)
{
    UserspaceGovernor g(1);
    EXPECT_EQ(g.desiredIndex(ladder(), 1.0, Time::zero()), 1u);
    g.setIndex(17);
    EXPECT_EQ(g.desiredIndex(ladder(), 1.0, Time::zero()), 3u);
}

TEST(Cpufreq, InteractiveJumpsToMaxUnderHighLoad)
{
    InteractiveGovernor g;
    EXPECT_EQ(g.desiredIndex(ladder(), 0.95, Time::msec(10)), 3u);
}

TEST(Cpufreq, InteractiveScalesDownWhenIdle)
{
    InteractiveGovernor g;
    std::size_t idx = g.desiredIndex(ladder(), 0.05, Time::msec(10));
    EXPECT_EQ(idx, 0u);
}

TEST(Cpufreq, InteractiveHonoursMinSampleTime)
{
    InteractiveGovernor g;
    EXPECT_EQ(g.desiredIndex(ladder(), 0.95, Time::msec(10)), 3u);
    // 5 ms later the load collapses, but the dwell holds the choice.
    EXPECT_EQ(g.desiredIndex(ladder(), 0.0, Time::msec(15)), 3u);
    // After the dwell it may drop.
    EXPECT_EQ(g.desiredIndex(ladder(), 0.0, Time::msec(60)), 0u);
}

TEST(Rbcpr, RecoupGrowsWithLeakAndSpeed)
{
    VariationModel m(node20nmSoC());
    Die slow = m.dieAtCorner(-1.5, 0, 0, "slow");
    Die fast = m.dieAtCorner(+1.5, 0, 0, "fast");

    RbcprParams params;
    RbcprController a(params), b(params);
    // Run long enough for the slewed loops to converge.
    Volts va, vb;
    for (int i = 0; i < 100; ++i) {
        va = a.update(Time::msec(200 * (i + 1)), slow, Celsius(50));
        vb = b.update(Time::msec(200 * (i + 1)), fast, Celsius(50));
    }
    EXPECT_GT(vb.value(), va.value());
    EXPECT_LE(vb.value(), params.maxRecoup);
    EXPECT_GE(va.value(), 0.0);
}

TEST(Rbcpr, SlewLimited)
{
    VariationModel m(node20nmSoC());
    Die fast = m.dieAtCorner(+2.0, 0, 0, "fast");
    RbcprController c((RbcprParams()));
    Volts v1 = c.update(Time::msec(200), fast, Celsius(60));
    EXPECT_LE(v1.value(), 0.005 + 1e-12); // one 5 mV step max
    Volts v2 = c.update(Time::msec(400), fast, Celsius(60));
    EXPECT_LE(v2.value() - v1.value(), 0.005 + 1e-12);
}

TEST(Rbcpr, ResetZeroes)
{
    VariationModel m(node20nmSoC());
    Die fast = m.dieAtCorner(+2.0, 0, 0, "fast");
    RbcprController c((RbcprParams()));
    c.update(Time::msec(200), fast, Celsius(60));
    c.reset();
    EXPECT_DOUBLE_EQ(c.recoup().value(), 0.0);
}

InputVoltageThrottleParams
ivtParams()
{
    InputVoltageThrottleParams p;
    p.engageBelow = Volts(4.00);
    p.releaseAbove = Volts(4.10);
    p.cap = MegaHertz(1593);
    p.pollPeriod = Time::msec(500);
    return p;
}

TEST(InputVoltageThrottle, EngagesBelowThreshold)
{
    InputVoltageThrottle t(ivtParams());
    t.update(Time::msec(500), Volts(3.85));
    EXPECT_TRUE(t.engaged());
    EXPECT_DOUBLE_EQ(t.freqCap().value(), 1593);
}

TEST(InputVoltageThrottle, StaysDisengagedAtHealthyRail)
{
    InputVoltageThrottle t(ivtParams());
    t.update(Time::msec(500), Volts(4.35));
    EXPECT_FALSE(t.engaged());
    EXPECT_TRUE(std::isinf(t.freqCap().value()));
}

TEST(InputVoltageThrottle, HysteresisBand)
{
    InputVoltageThrottle t(ivtParams());
    t.update(Time::msec(500), Volts(3.95));
    EXPECT_TRUE(t.engaged());
    // Inside the band: stays engaged.
    t.update(Time::msec(1000), Volts(4.05));
    EXPECT_TRUE(t.engaged());
    // Above release: lets go.
    t.update(Time::msec(1500), Volts(4.15));
    EXPECT_FALSE(t.engaged());
}

TEST(InputVoltageThrottle, InvalidThresholdsDie)
{
    InputVoltageThrottleParams p = ivtParams();
    p.releaseAbove = Volts(3.90);
    EXPECT_DEATH(InputVoltageThrottle t(p), "");
}

} // namespace
} // namespace pvar
