file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_thermabox.dir/bench_fig3_thermabox.cc.o"
  "CMakeFiles/bench_fig3_thermabox.dir/bench_fig3_thermabox.cc.o.d"
  "bench_fig3_thermabox"
  "bench_fig3_thermabox.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_thermabox.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
