/**
 * @file
 * Bin detective: recover hidden CPU bins from benchmark scores.
 *
 * The paper's future work (§VI) proposes clustering crowdsourced
 * ACCUBENCH scores to reconstruct manufacturers' hidden bins. This
 * example plays the whole game end to end:
 *
 *  1. Manufacture a lot of SD-800 dies and voltage-bin them into 7
 *     bins (the ground truth, normally secret).
 *  2. Build a phone around one sampled die per bin and ACCUBENCH it.
 *  3. Hand only the scores to the k-means bin-recovery algorithm.
 *  4. Compare the recovered grouping against the ground truth.
 */

#include <cstdio>

#include "accubench/bin_clustering.hh"
#include "accubench/experiment.hh"
#include "device/catalog.hh"
#include "silicon/binning.hh"
#include "silicon/process_node.hh"
#include "silicon/variation_model.hh"
#include "sim/logging.hh"

using namespace pvar;

int
main()
{
    setLogLevel(LogLevel::Quiet);

    // -- 1. Manufacture and (secretly) bin a lot. -------------------------
    std::printf("Manufacturing a 400-die 28 nm lot and voltage-binning "
                "it into 7 bins...\n");
    VariationModel model(node28nmHPm());
    Rng rng(777);
    auto lot = model.sampleLot(rng, 400, "die");

    VoltageBinningConfig bin_cfg;
    for (double f : {300.0, 729.0, 960.0, 1574.0, 2265.0})
        bin_cfg.frequencyLadder.push_back(MegaHertz(f));
    bin_cfg.binCount = 7;
    bin_cfg.vFloor = Volts(0.75);
    VoltageBinningResult binning = voltageBin(lot, bin_cfg);

    // -- 2. Benchmark three units from bins 0, 3 and 6. --------------------
    // Adjacent bins overlap heavily, so a small crowdsourced sample
    // can only resolve well-separated tiers. The benchmark runs in a
    // warm (32 C) environment: throttling differentiates the bins
    // much more clearly when every unit is forced to mitigate.
    std::printf("Benchmarking units drawn from bins 0, 3, 6 at 32 C "
                "ambient...\n\n");
    std::vector<ScoredUnit> scored;
    std::vector<int> truth;

    for (int want_bin : {0, 3, 6}) {
        int sampled = 0;
        for (std::size_t i = 0; i < lot.size() && sampled < 3; ++i) {
            if (binning.assignment[i] != want_bin)
                continue;
            ++sampled;

            // Rebuild the same die corner inside a full phone.
            DeviceConfig cfg = nexus5Config(want_bin);
            Die die(node28nmHPm(), lot[i].params());
            Device device(std::move(cfg), std::move(die));

            ExperimentConfig exp;
            exp.mode = WorkloadMode::Unconstrained;
            exp.iterations = 2;
            exp.thermabox.target = Celsius(32.0);
            exp.accubench.cooldownTarget = Celsius(40.0);
            ExperimentResult r = runExperiment(device, exp);

            std::printf("  %-10s (true bin %d): score %.1f\n",
                        lot[i].id().c_str(), want_bin, r.meanScore());
            scored.push_back(ScoredUnit{lot[i].id(), r.meanScore()});
            truth.push_back(want_bin);
        }
    }

    // -- 3. Recover bins from the scores alone. ---------------------------
    std::printf("\nClustering %zu scores with k-means (elbow-selected "
                "k)...\n",
                scored.size());
    Rng cluster_rng(42);
    BinRecovery recovered = recoverBins(scored, 7, cluster_rng);

    std::printf("Recovered %zu performance bins:\n",
                recovered.bins.size());
    for (const auto &bin : recovered.bins) {
        std::printf("  perf-bin %d (center %.1f):", bin.index,
                    bin.centerScore);
        for (const auto &id : bin.unitIds)
            std::printf(" %s", id.c_str());
        std::printf("\n");
    }

    // -- 4. Score the recovery against the ground truth. -------------------
    // Two units should share a recovered bin iff they share a true bin.
    int pairs = 0, agreements = 0;
    for (std::size_t a = 0; a < scored.size(); ++a) {
        for (std::size_t b = a + 1; b < scored.size(); ++b) {
            bool same_truth = truth[a] == truth[b];
            bool same_found =
                recovered.assignment[a] == recovered.assignment[b];
            ++pairs;
            agreements += same_truth == same_found;
        }
    }
    std::printf("\nPair agreement with hidden ground truth: %d/%d "
                "(%.0f%%)\n",
                agreements, pairs, 100.0 * agreements / pairs);
    std::printf("Note: recovered bins order fastest-to-slowest scores, "
                "while voltage bins order slowest (bin-0) to fastest — "
                "and the paper's counterintuitive result is visible "
                "here: the highest-voltage bin-0 units score highest.\n");
    return 0;
}
