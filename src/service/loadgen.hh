/**
 * @file
 * Native load generation against the study service.
 *
 * Two driving disciplines, per the repeatable-measurement
 * methodology the bench suite follows (PAPERS.md):
 *
 *  - Closed loop (targetRps == 0): a fixed number of connections,
 *    each issuing its next request the moment the previous response
 *    arrives. Measures the service's saturated throughput; latency is
 *    response time under self-limiting load.
 *
 *  - Open loop (targetRps > 0): requests are *scheduled* on a fixed
 *    arrival clock shared by all connections, and each latency sample
 *    is measured from the request's scheduled arrival time — not from
 *    when a free connection got around to sending it. A service that
 *    falls behind therefore shows the queueing delay in its tail
 *    instead of silently hiding it (the coordinated-omission trap).
 *
 * Latencies land in an HDR-style log-linear histogram: 32 linear
 * sub-buckets per power-of-two octave of microseconds, so p50/p95/p99
 * resolve to ~3% across nanosecond-to-minute ranges at a few KB of
 * memory, and merging per-thread histograms is element-wise addition.
 */

#ifndef PVAR_SERVICE_LOADGEN_HH
#define PVAR_SERVICE_LOADGEN_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "service/http.hh"

namespace pvar
{

/** HDR-style log-linear latency histogram over microseconds. */
class LatencyHistogram
{
  public:
    LatencyHistogram();

    void record(std::uint64_t us);
    void merge(const LatencyHistogram &other);

    std::uint64_t count() const { return _count; }
    std::uint64_t maxUs() const { return _maxUs; }
    double meanUs() const;

    /** Value at percentile @p p in [0, 100]; 0 when empty. */
    std::uint64_t percentileUs(double p) const;

  private:
    std::vector<std::uint64_t> _buckets;
    std::uint64_t _count = 0;
    std::uint64_t _sumUs = 0;
    std::uint64_t _maxUs = 0;

    static std::size_t bucketIndex(std::uint64_t us);
    static std::uint64_t bucketValue(std::size_t index);
};

/** One load-generation run. */
struct LoadGenConfig
{
    std::string host = "127.0.0.1";
    int port = 0;
    std::string method = "GET";
    std::string path = "/devices";
    std::string body;

    /** Concurrent connections (threads). */
    int connections = 4;

    /** Open-loop arrival rate; 0 runs closed-loop. */
    double targetRps = 0.0;

    /** Measured window, after warmup. */
    int durationMs = 2000;

    /** Requests started in the first warmupMs are not recorded. */
    int warmupMs = 200;

    /** Reuse connections (keep-alive) vs one connection per request. */
    bool keepAlive = true;

    /**
     * Retries per request after a transport error or a 429/503 shed
     * response, with capped jittered exponential backoff. A shed
     * response's Retry-After header raises the backoff floor (still
     * capped at retryCapMs). 0 disables retrying (every failure is
     * final), matching the pre-retry behavior.
     */
    int maxRetries = 0;

    /** First backoff step, in ms; doubles per attempt. */
    int retryBaseMs = 10;

    /** Backoff ceiling, in ms (also caps honored Retry-After). */
    int retryCapMs = 1000;

    /**
     * Oracle body: when non-empty, every 200 response body must be
     * byte-identical to it; divergences count in bodyMismatches.
     * This is how the chaos harness proves fault injection never
     * corrupts successful responses.
     */
    std::string expectBody;

    HttpLimits limits;
};

/** What a run measured. */
struct LoadGenReport
{
    std::uint64_t requests = 0;  ///< recorded (post-warmup) requests
    std::uint64_t warmup = 0;    ///< discarded warmup requests
    std::uint64_t errors = 0;    ///< transport errors (connect/send/read)
    std::map<int, std::uint64_t> statuses; ///< responses by HTTP status
    double elapsedSec = 0.0;     ///< measured window wall time
    double rps = 0.0;            ///< recorded requests / elapsed
    std::uint64_t keepAliveReuses = 0;
    /** Backoff-and-retry attempts taken (transport errors + sheds). */
    std::uint64_t retries = 0;
    /** 200 bodies that differed from cfg.expectBody (0 when unset). */
    std::uint64_t bodyMismatches = 0;
    LatencyHistogram latency;

    /** First 200 body seen, for byte-identity checks vs the CLI. */
    std::string sampleBody;

    /** Responses outside 2xx (derived from statuses). */
    std::uint64_t non2xx() const;

    /**
     * Load-shedding responses (429 backpressure, 503 overload),
     * derived from statuses. These are the service refusing work by
     * design, not the service being wrong — exit codes and chaos
     * invariants treat them separately from hard errors.
     */
    std::uint64_t shed() const;
};

/** Drive the service; blocks for warmup + duration. */
LoadGenReport runLoadGen(const LoadGenConfig &cfg);

/** The run as a JSON report (config echo + measurements). */
std::string loadGenReportJson(const LoadGenConfig &cfg,
                              const LoadGenReport &report);

} // namespace pvar

#endif // PVAR_SERVICE_LOADGEN_HH
