/**
 * @file
 * Shared implementation for the per-SoC variation figures
 * (paper Figs 6-9): run the study protocol on one SoC's fleet and
 * print the normalized performance and energy panels with shape
 * checks against the paper's numbers.
 */

#ifndef PVAR_BENCH_SOC_FIGURE_HH
#define PVAR_BENCH_SOC_FIGURE_HH

#include <cstdio>
#include <string>

#include "accubench/protocol.hh"
#include "bench_util.hh"
#include "report/figure.hh"
#include "report/table.hh"

namespace pvar
{

/** Paper reference numbers for one SoC figure. */
struct SocFigureSpec
{
    std::string figureId;
    std::string socName;
    double paperPerfPercent;
    double paperEnergyPercent;
    /** Acceptance half-width around the paper number (points). */
    double perfTolerance = 5.0;
    double energyTolerance = 6.0;
};

/** Run the protocol and render panels (a) performance, (b) energy. */
inline int
runSocFigure(const SocFigureSpec &spec)
{
    benchQuiet();
    std::printf("%s",
                figureHeader(
                    spec.figureId + ": Process variations in " +
                        spec.socName,
                    "performance variation ~" +
                        fmtPercent(spec.paperPerfPercent, 0) +
                        ", energy variation ~" +
                        fmtPercent(spec.paperEnergyPercent, 0))
                    .c_str());

    StudyConfig cfg;
    cfg.iterations = 5; // the paper's minimum
    SocStudy s = runSocStudy(spec.socName, cfg);

    Table t({"Unit", "Score (iter)", "RSD", "Fixed energy (J)", "RSD",
             "Fixed score"});
    BarFigure perf("(" + spec.figureId +
                       "a) UNCONSTRAINED performance, normalized to best",
                   "iterations");
    BarFigure energy("(" + spec.figureId +
                         "b) FIXED-FREQUENCY energy, normalized to best",
                     "J");
    for (const auto &u : s.units) {
        t.addRow({u.unitId, fmtDouble(u.meanScore, 1),
                  fmtPercent(u.scoreRsdPercent, 2),
                  fmtDouble(u.meanFixedEnergyJ, 1),
                  fmtPercent(u.fixedEnergyRsdPercent, 2),
                  fmtDouble(u.meanFixedScore, 1)});
        perf.addBar(u.unitId, u.meanScore);
        energy.addBar(u.unitId, u.meanFixedEnergyJ);
    }
    std::printf("%s\n", t.render().c_str());
    std::printf("%s\n", perf.render(true).c_str());
    std::printf("%s\n", energy.render(false).c_str());

    std::printf("Measured: performance variation %s, energy variation "
                "%s, fixed-frequency perf spread %s\n",
                fmtPercent(s.perfVariationPercent).c_str(),
                fmtPercent(s.energyVariationPercent).c_str(),
                fmtPercent(s.fixedPerfSpreadPercent, 2).c_str());

    std::printf("\nSHAPE CHECK vs paper:\n");
    shapeCheck(std::abs(s.perfVariationPercent - spec.paperPerfPercent) <=
                   spec.perfTolerance,
               "performance variation " +
                   fmtPercent(s.perfVariationPercent) + " vs paper " +
                   fmtPercent(spec.paperPerfPercent, 0));
    shapeCheck(std::abs(s.energyVariationPercent -
                        spec.paperEnergyPercent) <= spec.energyTolerance,
               "energy variation " +
                   fmtPercent(s.energyVariationPercent) + " vs paper " +
                   fmtPercent(spec.paperEnergyPercent, 0));
    shapeCheck(s.fixedPerfSpreadPercent <= 2.0,
               "fixed-frequency performance spread stays negligible "
               "(setup sanity, paper: <=1.3-2.6% RSD)");
    return 0;
}

} // namespace pvar

#endif // PVAR_BENCH_SOC_FIGURE_HH
