/**
 * @file
 * Analytic (eigendecomposition) solver for RC thermal networks.
 *
 * An RC network with constant injected power and fixed boundary
 * temperatures is a linear time-invariant system: C dT/dt = -L T + b.
 * Scaling by C^(-1/2) symmetrizes the interior Laplacian, so one
 * Jacobi eigendecomposition per topology gives the exact transient
 * for any horizon:
 *
 *   T(dt) = T(0) + C^(-1/2) Q diag(phi_k(dt)) Q^T C^(-1/2) r(0)
 *   phi_k(dt) = (1 - exp(-lambda_k dt)) / lambda_k   (-> dt as l->0)
 *
 * where r(0) = b - L T(0) is the net heat inflow per interior node at
 * the start of the interval — the same quantity the stepped Euler
 * integrator computes per substep. Each jump is O(n^2) in the number
 * of interior nodes, independent of the horizon, which is what lets
 * the simulator advance event-to-event instead of tick-by-tick.
 *
 * The zero-eigenvalue limit of phi also covers networks with no
 * boundary (a conserved-energy mode): the transient is still exact,
 * only steadyState() refuses, because no steady state exists.
 */

#ifndef PVAR_THERMAL_FAST_SOLVER_HH
#define PVAR_THERMAL_FAST_SOLVER_HH

#include <cstddef>
#include <vector>

namespace pvar
{

/** Edge description fed to FastThermalSolver::build. */
struct FastSolverEdge
{
    std::size_t a;
    std::size_t b;
    double conductance; // W/K
};

/**
 * Eigendecomposed advance/steady-state engine for one RC topology.
 *
 * Indices in build/advance refer to the full node vector of the
 * owning network (boundaries included); a capacitance <= 0 marks a
 * boundary. The decomposition is valid until the topology changes,
 * at which point build() must be called again.
 */
class FastThermalSolver
{
  public:
    /**
     * Eigendecompose the scaled interior Laplacian.
     *
     * @param capacitances per-node heat capacity (J/K); <= 0 marks a
     *        fixed-temperature boundary.
     * @param edges conductances between node pairs.
     * @return true when the decomposition converged and the solver is
     *         usable; false leaves the solver not ready.
     */
    bool build(const std::vector<double> &capacitances,
               const std::vector<FastSolverEdge> &edges);

    bool ready() const { return _ready; }

    /** Interior (non-boundary) node count of the built topology. */
    std::size_t interiorCount() const { return _interior.size(); }

    /**
     * Advance interior temperatures by `dt_sec` with powers held
     * constant. `temps` and `powers` are full-length node vectors;
     * boundary entries of `temps` are read, never written.
     */
    void advance(std::vector<double> &temps,
                 const std::vector<double> &powers, double dt_sec);

    /**
     * Advance `b` independent copies of the topology at once.
     *
     * `temps` and `powers` are planar SoA arrays of b full-length node
     * vectors, laid out [node * b + die] so the die loop is innermost
     * and contiguous. Each die's floating-point operation sequence is
     * exactly the sequence advance() performs on that die alone, so
     * per-die results are bit-identical to b calls of advance(); the
     * batching only overlaps the independent dependency chains.
     */
    void advanceBatch(double *temps, const double *powers, std::size_t b,
                      double dt_sec);

    /**
     * Jump interior temperatures to the steady state for the current
     * powers and boundaries.
     *
     * @return false (temps untouched) when the system is singular —
     *         some component has no boundary path, so no steady state
     *         exists — or the solver is not ready.
     */
    bool steadyState(std::vector<double> &temps,
                     const std::vector<double> &powers);

  private:
    bool _ready = false;

    std::vector<std::size_t> _interior; // interior -> full index
    std::vector<FastSolverEdge> _edges; // copy, full indices
    std::vector<double> _invSqrtC;      // per interior node
    std::vector<double> _eigenvalues;   // lambda_k, ascending-ish
    std::vector<double> _eigenvectors;  // Q, row-major [i*n + k]

    // Scratch sized at build() so advance() never allocates.
    std::vector<double> _flux; // full length
    std::vector<double> _w;    // interior length
    std::vector<double> _y;    // interior length

    // Batch scratch, sized on first advanceBatch() for a given width.
    std::vector<double> _bFlux; // full length * b
    std::vector<double> _bW;    // interior length * b
    std::vector<double> _bY;    // interior length * b
    std::vector<double> _bAcc;  // b

    // phi_k(dt) depends only on dt; the simulator replays a small set
    // of interval lengths (poll periods, trace cadence), so memoize
    // the vector per dt.
    struct PhiEntry
    {
        double dtSec;
        std::vector<double> phi;
    };
    std::vector<PhiEntry> _phiMemo;
    std::size_t _phiNext = 0;

    const std::vector<double> &phiFor(double dt_sec);
    void netInflow(const std::vector<double> &temps,
                   const std::vector<double> &powers);
    void applyModal(std::vector<double> &temps,
                    const std::vector<double> &factors);
};

} // namespace pvar

#endif // PVAR_THERMAL_FAST_SOLVER_HH
