file(REMOVE_RECURSE
  "CMakeFiles/pvar_stats.dir/stats/fit.cc.o"
  "CMakeFiles/pvar_stats.dir/stats/fit.cc.o.d"
  "CMakeFiles/pvar_stats.dir/stats/histogram.cc.o"
  "CMakeFiles/pvar_stats.dir/stats/histogram.cc.o.d"
  "CMakeFiles/pvar_stats.dir/stats/kmeans.cc.o"
  "CMakeFiles/pvar_stats.dir/stats/kmeans.cc.o.d"
  "CMakeFiles/pvar_stats.dir/stats/summary.cc.o"
  "CMakeFiles/pvar_stats.dir/stats/summary.cc.o.d"
  "libpvar_stats.a"
  "libpvar_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pvar_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
