file(REMOVE_RECURSE
  "CMakeFiles/pvar_thermal.dir/thermal/package.cc.o"
  "CMakeFiles/pvar_thermal.dir/thermal/package.cc.o.d"
  "CMakeFiles/pvar_thermal.dir/thermal/rc_network.cc.o"
  "CMakeFiles/pvar_thermal.dir/thermal/rc_network.cc.o.d"
  "CMakeFiles/pvar_thermal.dir/thermal/sensor.cc.o"
  "CMakeFiles/pvar_thermal.dir/thermal/sensor.cc.o.d"
  "libpvar_thermal.a"
  "libpvar_thermal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pvar_thermal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
