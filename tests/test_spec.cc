/**
 * @file
 * Spec-layer tests: the declarative DeviceSpec + generic buildDevice()
 * path must reproduce the legacy hand-built configs bit-for-bit, and
 * specs must survive a JSON round-trip exactly.
 *
 * The `legacy` namespaces below are verbatim copies of the six model
 * builders as they existed before the spec refactor (git history:
 * "PR 1"). They are the ground truth the data-driven path is checked
 * against, field for field, with exact double equality.
 */

#include <gtest/gtest.h>

#include "device/catalog.hh"
#include "device/fleet.hh"
#include "device/registry.hh"
#include "device/spec.hh"
#include "report/spec_json.hh"
#include "silicon/binning.hh"
#include "silicon/process_node.hh"
#include "silicon/variation_model.hh"

using namespace pvar;

// ---------------------------------------------------------------------
// Legacy builders (pre-refactor), copied verbatim.
// ---------------------------------------------------------------------

namespace legacy::n5
{

using namespace pvar;

const double tableIFreqs[] = {300, 729, 960, 1574, 2265};

const double tableIMv[7][5] = {
    {800, 835, 865, 965, 1100}, // bin-0
    {800, 820, 850, 945, 1075}, // bin-1
    {775, 805, 835, 925, 1050}, // bin-2
    {775, 790, 820, 910, 1025}, // bin-3
    {775, 780, 810, 895, 1000}, // bin-4
    {750, 770, 800, 880, 975},  // bin-5
    {750, 760, 790, 870, 950},  // bin-6
};

const double ladderMhz[] = {300, 729, 960, 1190, 1574, 1728, 1958, 2265};

double
interpolateMv(int bin, double freq)
{
    const double *mv = tableIMv[bin];
    if (freq <= tableIFreqs[0])
        return mv[0];
    for (int i = 1; i < 5; ++i) {
        if (freq <= tableIFreqs[i]) {
            double f = (freq - tableIFreqs[i - 1]) /
                       (tableIFreqs[i] - tableIFreqs[i - 1]);
            return mv[i - 1] + f * (mv[i] - mv[i - 1]);
        }
    }
    return mv[4];
}

VfTable
nexus5BinTable(int bin)
{
    std::vector<OperatingPoint> pts;
    for (double f : ladderMhz) {
        pts.push_back(OperatingPoint{
            MegaHertz(f),
            Volts::fromMillivolts(interpolateMv(bin, f))});
    }
    return VfTable(std::move(pts));
}

DeviceConfig
nexus5Config(int bin)
{
    DeviceConfig cfg;
    cfg.model = "Nexus 5";
    cfg.socName = "SD-800";

    cfg.package.dieCapacitance = 2.0;
    cfg.package.socCapacitance = 22.0;
    cfg.package.batteryCapacitance = 40.0;
    cfg.package.caseCapacitance = 60.0;
    cfg.package.dieToSoc = 0.32;
    cfg.package.socToCase = 0.33;
    cfg.package.socToBattery = 0.10;
    cfg.package.batteryToCase = 0.15;
    cfg.package.caseToAmbient = 0.23;

    CoreType krait;
    krait.name = "Krait-400";
    krait.sizeFactor = 1.0;
    krait.cyclesPerIteration = 2.6e9;

    ClusterParams cluster;
    cluster.name = "cpu";
    cluster.coreType = krait;
    cluster.coreCount = 4;
    cluster.table = nexus5BinTable(bin);

    cfg.soc.name = "SD-800";
    cfg.soc.clusters = {cluster};
    cfg.soc.uncoreActive = Watts(0.25);
    cfg.soc.uncoreSuspended = Watts(0.010);

    cfg.sensor.period = Time::msec(100);
    cfg.sensor.quantum = 1.0;
    cfg.sensor.noiseSigma = 0.2;

    cfg.thermalGov.trips = {
        TripPoint{Celsius(70), Celsius(67), MegaHertz(1958)},
        TripPoint{Celsius(73), Celsius(70), MegaHertz(1728)},
        TripPoint{Celsius(76), Celsius(73), MegaHertz(1574)},
        TripPoint{Celsius(79), Celsius(76), MegaHertz(1190)},
    };
    cfg.thermalGov.shutdowns = {
        CoreShutdownRule{Celsius(78), Celsius(72), 1},
    };
    cfg.thermalGov.pollPeriod = Time::msec(250);

    cfg.backgroundNoiseMean = 0.008;
    cfg.backgroundNoisePeriod = Time::sec(15);
    cfg.boardActive = Watts(0.10);
    cfg.pmicEfficiency = 0.88;

    cfg.battery.capacityWh = 8.7; // 2300 mAh
    cfg.battery.nominal = Volts(3.8);

    return cfg;
}

std::unique_ptr<Device>
makeNexus5(int bin, const UnitCorner &corner)
{
    DeviceConfig cfg = nexus5Config(bin);
    VariationModel model(node28nmHPm());
    Die die = model.dieAtCorner(corner.corner, corner.leakResidual,
                                corner.vthOffset, corner.id);
    return std::make_unique<Device>(std::move(cfg), std::move(die));
}

} // namespace legacy::n5

namespace legacy::n6
{

using namespace pvar;

const double ladderMhz[] = {300, 729, 1032, 1190, 1574, 1958, 2265, 2649};

VfTable
nexus6Table()
{
    VariationModel model(node28nmHPm());
    Die typical = model.dieAtCorner(0.0, 0.0, 0.0, "sd805-typ");

    VoltageBinningConfig bin_cfg;
    for (double f : ladderMhz)
        bin_cfg.frequencyLadder.push_back(MegaHertz(f));
    bin_cfg.guardBand = 0.035;
    bin_cfg.vCeiling = Volts(1.20);
    bin_cfg.vFloor = Volts(0.70);
    return fuseTableForDie(typical, bin_cfg);
}

DeviceConfig
nexus6Config()
{
    DeviceConfig cfg;
    cfg.model = "Nexus 6";
    cfg.socName = "SD-805";

    cfg.package.dieCapacitance = 2.2;
    cfg.package.socCapacitance = 28.0;
    cfg.package.batteryCapacitance = 55.0;
    cfg.package.caseCapacitance = 90.0;
    cfg.package.dieToSoc = 0.55;
    cfg.package.socToCase = 0.40;
    cfg.package.socToBattery = 0.10;
    cfg.package.batteryToCase = 0.15;
    cfg.package.caseToAmbient = 0.32;

    CoreType krait;
    krait.name = "Krait-450";
    krait.sizeFactor = 1.05;
    krait.cyclesPerIteration = 2.6e9;

    ClusterParams cluster;
    cluster.name = "cpu";
    cluster.coreType = krait;
    cluster.coreCount = 4;
    cluster.table = nexus6Table();

    cfg.soc.name = "SD-805";
    cfg.soc.clusters = {cluster};
    cfg.soc.uncoreActive = Watts(0.28);
    cfg.soc.uncoreSuspended = Watts(0.012);

    cfg.sensor.period = Time::msec(100);
    cfg.sensor.quantum = 1.0;
    cfg.sensor.noiseSigma = 0.2;

    cfg.thermalGov.trips = {
        TripPoint{Celsius(77), Celsius(74), MegaHertz(2265)},
        TripPoint{Celsius(80), Celsius(77), MegaHertz(1958)},
        TripPoint{Celsius(83), Celsius(80), MegaHertz(1574)},
        TripPoint{Celsius(86), Celsius(83), MegaHertz(1190)},
    };
    cfg.thermalGov.shutdowns = {
        CoreShutdownRule{Celsius(82), Celsius(77), 1},
    };
    cfg.thermalGov.pollPeriod = Time::msec(250);

    cfg.backgroundNoiseMean = 0.008;
    cfg.backgroundNoisePeriod = Time::sec(15);
    cfg.boardActive = Watts(0.12);
    cfg.pmicEfficiency = 0.88;

    cfg.battery.capacityWh = 12.4; // 3220 mAh
    cfg.battery.nominal = Volts(3.8);

    return cfg;
}

std::unique_ptr<Device>
makeNexus6(const UnitCorner &corner)
{
    DeviceConfig cfg = nexus6Config();
    VariationModel model(node28nmHPm());
    Die die = model.dieAtCorner(corner.corner, corner.leakResidual,
                                corner.vthOffset, corner.id);
    return std::make_unique<Device>(std::move(cfg), std::move(die));
}

} // namespace legacy::n6

namespace legacy::n6p
{

using namespace pvar;

const double bigLadderMhz[] = {384, 633, 864, 1248, 1555, 1958};
const double littleLadderMhz[] = {384, 691, 1036, 1555};

VoltageBinningConfig
ladderConfig(const double *mhz, std::size_t n)
{
    VoltageBinningConfig cfg;
    for (std::size_t i = 0; i < n; ++i)
        cfg.frequencyLadder.push_back(MegaHertz(mhz[i]));
    cfg.guardBand = 0.030;
    cfg.vCeiling = Volts(1.15);
    cfg.vFloor = Volts(0.60);
    return cfg;
}

DeviceConfig
nexus6pConfig()
{
    DeviceConfig cfg;
    cfg.model = "Nexus 6P";
    cfg.socName = "SD-810";

    cfg.package.dieCapacitance = 2.4;
    cfg.package.socCapacitance = 26.0;
    cfg.package.batteryCapacitance = 52.0;
    cfg.package.caseCapacitance = 85.0;
    cfg.package.dieToSoc = 0.35;
    cfg.package.socToCase = 0.38;
    cfg.package.socToBattery = 0.10;
    cfg.package.batteryToCase = 0.15;
    cfg.package.caseToAmbient = 0.30;

    CoreType a57;
    a57.name = "Cortex-A57";
    a57.sizeFactor = 1.60;
    a57.cyclesPerIteration = 2.3e9;

    CoreType a53;
    a53.name = "Cortex-A53";
    a53.sizeFactor = 0.50;
    a53.cyclesPerIteration = 4.2e9;

    ClusterParams big;
    big.name = "big";
    big.coreType = a57;
    big.coreCount = 4;

    ClusterParams little;
    little.name = "little";
    little.coreType = a53;
    little.coreCount = 4;

    cfg.soc.name = "SD-810";
    cfg.soc.clusters = {big, little};
    cfg.soc.uncoreActive = Watts(0.30);
    cfg.soc.uncoreSuspended = Watts(0.014);

    cfg.sensor.period = Time::msec(100);
    cfg.sensor.quantum = 1.0;
    cfg.sensor.noiseSigma = 0.2;

    cfg.thermalGov.trips = {
        TripPoint{Celsius(70), Celsius(67), MegaHertz(1555)},
        TripPoint{Celsius(74), Celsius(71), MegaHertz(1248)},
        TripPoint{Celsius(78), Celsius(75), MegaHertz(864)},
        TripPoint{Celsius(82), Celsius(79), MegaHertz(633)},
    };
    cfg.thermalGov.shutdowns = {
        CoreShutdownRule{Celsius(76), Celsius(71), 2},
    };
    cfg.thermalGov.pollPeriod = Time::msec(250);

    cfg.hasRbcpr = true;
    cfg.rbcpr.baseRecoup = 0.015;
    cfg.rbcpr.leakGain = 0.010;
    cfg.rbcpr.speedGain = 0.20;
    cfg.rbcpr.tempGain = 0.00015;
    cfg.rbcpr.maxRecoup = 0.030;

    cfg.backgroundNoiseMean = 0.008;
    cfg.backgroundNoisePeriod = Time::sec(15);
    cfg.boardActive = Watts(0.12);
    cfg.pmicEfficiency = 0.88;

    cfg.battery.capacityWh = 13.0; // 3450 mAh
    cfg.battery.nominal = Volts(3.8);

    return cfg;
}

std::unique_ptr<Device>
makeNexus6p(const UnitCorner &corner)
{
    DeviceConfig cfg = nexus6pConfig();
    VariationModel model(node20nmSoC());
    Die die = model.dieAtCorner(corner.corner, corner.leakResidual,
                                corner.vthOffset, corner.id);

    cfg.soc.clusters[0].table = fuseTableForDie(
        die, ladderConfig(bigLadderMhz, std::size(bigLadderMhz)));
    cfg.soc.clusters[1].table = fuseTableForDie(
        die, ladderConfig(littleLadderMhz, std::size(littleLadderMhz)));

    return std::make_unique<Device>(std::move(cfg), std::move(die));
}

} // namespace legacy::n6p

namespace legacy::g5
{

using namespace pvar;

const double perfLadderMhz[] = {307, 556, 825, 1113, 1401, 1593, 1824,
                                2150};
const double effLadderMhz[] = {307, 556, 825, 1113, 1363, 1593};

VoltageBinningConfig
ladderConfig(const double *mhz, std::size_t n)
{
    VoltageBinningConfig cfg;
    for (std::size_t i = 0; i < n; ++i)
        cfg.frequencyLadder.push_back(MegaHertz(mhz[i]));
    cfg.guardBand = 0.025;
    cfg.vCeiling = Volts(1.10);
    cfg.vFloor = Volts(0.55);
    return cfg;
}

DeviceConfig
lgG5Config()
{
    DeviceConfig cfg;
    cfg.model = "LG G5";
    cfg.socName = "SD-820";

    cfg.package.dieCapacitance = 2.2;
    cfg.package.socCapacitance = 24.0;
    cfg.package.batteryCapacitance = 48.0;
    cfg.package.caseCapacitance = 75.0;
    cfg.package.dieToSoc = 0.24;
    cfg.package.socToCase = 0.36;
    cfg.package.socToBattery = 0.10;
    cfg.package.batteryToCase = 0.15;
    cfg.package.caseToAmbient = 0.27;

    CoreType kryoPerf;
    kryoPerf.name = "Kryo-perf";
    kryoPerf.sizeFactor = 2.40;
    kryoPerf.cyclesPerIteration = 1.9e9;

    CoreType kryoEff;
    kryoEff.name = "Kryo-eff";
    kryoEff.sizeFactor = 1.50;
    kryoEff.cyclesPerIteration = 2.1e9;

    ClusterParams perf;
    perf.name = "perf";
    perf.coreType = kryoPerf;
    perf.coreCount = 2;

    ClusterParams eff;
    eff.name = "eff";
    eff.coreType = kryoEff;
    eff.coreCount = 2;

    cfg.soc.name = "SD-820";
    cfg.soc.clusters = {perf, eff};
    cfg.soc.uncoreActive = Watts(0.26);
    cfg.soc.uncoreSuspended = Watts(0.012);

    cfg.sensor.period = Time::msec(100);
    cfg.sensor.quantum = 1.0;
    cfg.sensor.noiseSigma = 0.2;

    cfg.thermalGov.trips = {
        TripPoint{Celsius(66), Celsius(63), MegaHertz(1824)},
        TripPoint{Celsius(69), Celsius(66), MegaHertz(1593)},
        TripPoint{Celsius(74), Celsius(71), MegaHertz(1401)},
        TripPoint{Celsius(77), Celsius(74), MegaHertz(1113)},
    };
    cfg.thermalGov.pollPeriod = Time::msec(250);

    cfg.hasRbcpr = true;
    cfg.rbcpr.baseRecoup = 0.012;
    cfg.rbcpr.leakGain = 0.004;
    cfg.rbcpr.speedGain = 0.18;
    cfg.rbcpr.tempGain = 0.00012;
    cfg.rbcpr.maxRecoup = 0.030;

    cfg.hasInputVoltageThrottle = true;
    cfg.inputThrottle.engageBelow = Volts(3.88);
    cfg.inputThrottle.releaseAbove = Volts(3.98);
    cfg.inputThrottle.cap = MegaHertz(1593);
    cfg.inputThrottle.pollPeriod = Time::msec(500);

    cfg.backgroundNoiseMean = 0.008;
    cfg.backgroundNoisePeriod = Time::sec(15);
    cfg.boardActive = Watts(0.11);
    cfg.pmicEfficiency = 0.89;

    cfg.battery.capacityWh = 10.8; // 2800 mAh
    cfg.battery.internalResistance = 0.07;
    cfg.battery.nominal = Volts(3.85);
    cfg.battery.vFull = Volts(4.40);

    return cfg;
}

std::unique_ptr<Device>
makeLgG5(const UnitCorner &corner)
{
    DeviceConfig cfg = lgG5Config();
    VariationModel model(node14nmFinFET());
    Die die = model.dieAtCorner(corner.corner, corner.leakResidual,
                                corner.vthOffset, corner.id);

    cfg.soc.clusters[0].table = fuseTableForDie(
        die, ladderConfig(perfLadderMhz, std::size(perfLadderMhz)));
    cfg.soc.clusters[1].table = fuseTableForDie(
        die, ladderConfig(effLadderMhz, std::size(effLadderMhz)));

    return std::make_unique<Device>(std::move(cfg), std::move(die));
}

} // namespace legacy::g5

namespace legacy::px
{

using namespace pvar;

const double perfLadderMhz[] = {307, 556, 825, 1113, 1401, 1593, 1824,
                                2150, 2342};
const double effLadderMhz[] = {307, 556, 825, 1113, 1363, 1593, 1824,
                               2150};

VoltageBinningConfig
ladderConfig(const double *mhz, std::size_t n)
{
    VoltageBinningConfig cfg;
    for (std::size_t i = 0; i < n; ++i)
        cfg.frequencyLadder.push_back(MegaHertz(mhz[i]));
    cfg.guardBand = 0.025;
    cfg.vCeiling = Volts(1.12);
    cfg.vFloor = Volts(0.55);
    return cfg;
}

DeviceConfig
pixelConfig()
{
    DeviceConfig cfg;
    cfg.model = "Google Pixel";
    cfg.socName = "SD-821";

    cfg.package.dieCapacitance = 2.2;
    cfg.package.socCapacitance = 24.0;
    cfg.package.batteryCapacitance = 46.0;
    cfg.package.caseCapacitance = 72.0;
    cfg.package.dieToSoc = 0.32;
    cfg.package.socToCase = 0.36;
    cfg.package.socToBattery = 0.10;
    cfg.package.batteryToCase = 0.15;
    cfg.package.caseToAmbient = 0.26;

    CoreType kryoPerf;
    kryoPerf.name = "Kryo-perf";
    kryoPerf.sizeFactor = 2.40;
    kryoPerf.cyclesPerIteration = 1.85e9;

    CoreType kryoEff;
    kryoEff.name = "Kryo-eff";
    kryoEff.sizeFactor = 1.50;
    kryoEff.cyclesPerIteration = 2.05e9;

    ClusterParams perf;
    perf.name = "perf";
    perf.coreType = kryoPerf;
    perf.coreCount = 2;

    ClusterParams eff;
    eff.name = "eff";
    eff.coreType = kryoEff;
    eff.coreCount = 2;

    cfg.soc.name = "SD-821";
    cfg.soc.clusters = {perf, eff};
    cfg.soc.uncoreActive = Watts(0.26);
    cfg.soc.uncoreSuspended = Watts(0.012);

    cfg.sensor.period = Time::msec(100);
    cfg.sensor.quantum = 1.0;
    cfg.sensor.noiseSigma = 0.2;

    cfg.thermalGov.trips = {
        TripPoint{Celsius(70.0), Celsius(68.5), MegaHertz(2150)},
        TripPoint{Celsius(73.0), Celsius(71.5), MegaHertz(1824)},
        TripPoint{Celsius(76.0), Celsius(74.5), MegaHertz(1593)},
        TripPoint{Celsius(79.0), Celsius(77.5), MegaHertz(1401)},
    };
    cfg.thermalGov.pollPeriod = Time::msec(250);

    cfg.hasRbcpr = true;
    cfg.rbcpr.baseRecoup = 0.012;
    cfg.rbcpr.leakGain = 0.004;
    cfg.rbcpr.speedGain = 0.18;
    cfg.rbcpr.tempGain = 0.00012;
    cfg.rbcpr.maxRecoup = 0.030;

    cfg.backgroundNoiseMean = 0.008;
    cfg.backgroundNoisePeriod = Time::sec(15);
    cfg.boardActive = Watts(0.11);
    cfg.pmicEfficiency = 0.89;

    cfg.battery.capacityWh = 10.7; // 2770 mAh
    cfg.battery.nominal = Volts(3.85);

    return cfg;
}

std::unique_ptr<Device>
makePixel(const UnitCorner &corner)
{
    DeviceConfig cfg = pixelConfig();
    VariationModel model(node14nmFinFET());
    Die die = model.dieAtCorner(corner.corner, corner.leakResidual,
                                corner.vthOffset, corner.id);

    cfg.soc.clusters[0].table = fuseTableForDie(
        die, ladderConfig(perfLadderMhz, std::size(perfLadderMhz)));
    cfg.soc.clusters[1].table = fuseTableForDie(
        die, ladderConfig(effLadderMhz, std::size(effLadderMhz)));

    return std::make_unique<Device>(std::move(cfg), std::move(die));
}

} // namespace legacy::px

namespace legacy::p2
{

using namespace pvar;

const double perfLadderMhz[] = {300, 576, 825, 1113, 1401, 1574, 1824,
                                2112, 2457};
const double effLadderMhz[] = {300, 576, 825, 1113, 1401, 1670, 1900};

VoltageBinningConfig
ladderConfig(const double *mhz, std::size_t n)
{
    VoltageBinningConfig cfg;
    for (std::size_t i = 0; i < n; ++i)
        cfg.frequencyLadder.push_back(MegaHertz(mhz[i]));
    cfg.guardBand = 0.022;
    cfg.vCeiling = Volts(1.00);
    cfg.vFloor = Volts(0.50);
    return cfg;
}

DeviceConfig
pixel2Config()
{
    DeviceConfig cfg;
    cfg.model = "Google Pixel 2";
    cfg.socName = "SD-835";

    cfg.package.dieCapacitance = 2.2;
    cfg.package.socCapacitance = 24.0;
    cfg.package.batteryCapacitance = 44.0;
    cfg.package.caseCapacitance = 70.0;
    cfg.package.dieToSoc = 0.34;
    cfg.package.socToCase = 0.36;
    cfg.package.socToBattery = 0.10;
    cfg.package.batteryToCase = 0.15;
    cfg.package.caseToAmbient = 0.26;

    CoreType kryoGold;
    kryoGold.name = "Kryo-280-gold";
    kryoGold.sizeFactor = 2.00;
    kryoGold.cyclesPerIteration = 1.75e9;

    CoreType kryoSilver;
    kryoSilver.name = "Kryo-280-silver";
    kryoSilver.sizeFactor = 0.90;
    kryoSilver.cyclesPerIteration = 2.60e9;

    ClusterParams gold;
    gold.name = "gold";
    gold.coreType = kryoGold;
    gold.coreCount = 4;

    ClusterParams silver;
    silver.name = "silver";
    silver.coreType = kryoSilver;
    silver.coreCount = 4;

    cfg.soc.name = "SD-835";
    cfg.soc.clusters = {gold, silver};
    cfg.soc.uncoreActive = Watts(0.24);
    cfg.soc.uncoreSuspended = Watts(0.010);

    cfg.sensor.period = Time::msec(100);
    cfg.sensor.quantum = 1.0;
    cfg.sensor.noiseSigma = 0.2;

    cfg.thermalGov.trips = {
        TripPoint{Celsius(72.0), Celsius(70.0), MegaHertz(2112)},
        TripPoint{Celsius(75.0), Celsius(73.0), MegaHertz(1824)},
        TripPoint{Celsius(78.0), Celsius(76.0), MegaHertz(1574)},
        TripPoint{Celsius(81.0), Celsius(79.0), MegaHertz(1401)},
    };
    cfg.thermalGov.pollPeriod = Time::msec(250);

    cfg.hasRbcpr = true;
    cfg.rbcpr.baseRecoup = 0.012;
    cfg.rbcpr.leakGain = 0.004;
    cfg.rbcpr.speedGain = 0.18;
    cfg.rbcpr.tempGain = 0.00012;
    cfg.rbcpr.maxRecoup = 0.030;

    cfg.backgroundNoiseMean = 0.008;
    cfg.backgroundNoisePeriod = Time::sec(15);
    cfg.boardActive = Watts(0.10);
    cfg.pmicEfficiency = 0.90;

    cfg.battery.capacityWh = 10.7; // 2700 mAh
    cfg.battery.nominal = Volts(3.85);

    return cfg;
}

std::unique_ptr<Device>
makePixel2(const UnitCorner &corner)
{
    DeviceConfig cfg = pixel2Config();
    VariationModel model(node10nmLPE());
    Die die = model.dieAtCorner(corner.corner, corner.leakResidual,
                                corner.vthOffset, corner.id);

    cfg.soc.clusters[0].table = fuseTableForDie(
        die, ladderConfig(perfLadderMhz, std::size(perfLadderMhz)));
    cfg.soc.clusters[1].table = fuseTableForDie(
        die, ladderConfig(effLadderMhz, std::size(effLadderMhz)));

    return std::make_unique<Device>(std::move(cfg), std::move(die));
}

} // namespace legacy::p2

// ---------------------------------------------------------------------
// Field-for-field config comparison with exact double equality.
// ---------------------------------------------------------------------

namespace
{

void
expectTablesEqual(const VfTable &a, const VfTable &b)
{
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a.point(i).freq.value(), b.point(i).freq.value());
        EXPECT_EQ(a.point(i).voltage.value(),
                  b.point(i).voltage.value());
    }
}

void
expectConfigsEqual(const DeviceConfig &a, const DeviceConfig &b)
{
    EXPECT_EQ(a.model, b.model);
    EXPECT_EQ(a.socName, b.socName);

    EXPECT_EQ(a.package.dieCapacitance, b.package.dieCapacitance);
    EXPECT_EQ(a.package.socCapacitance, b.package.socCapacitance);
    EXPECT_EQ(a.package.batteryCapacitance,
              b.package.batteryCapacitance);
    EXPECT_EQ(a.package.caseCapacitance, b.package.caseCapacitance);
    EXPECT_EQ(a.package.dieToSoc, b.package.dieToSoc);
    EXPECT_EQ(a.package.socToCase, b.package.socToCase);
    EXPECT_EQ(a.package.socToBattery, b.package.socToBattery);
    EXPECT_EQ(a.package.batteryToCase, b.package.batteryToCase);
    EXPECT_EQ(a.package.caseToAmbient, b.package.caseToAmbient);

    EXPECT_EQ(a.soc.name, b.soc.name);
    EXPECT_EQ(a.soc.uncoreActive.value(), b.soc.uncoreActive.value());
    EXPECT_EQ(a.soc.uncoreSuspended.value(),
              b.soc.uncoreSuspended.value());
    ASSERT_EQ(a.soc.clusters.size(), b.soc.clusters.size());
    for (std::size_t c = 0; c < a.soc.clusters.size(); ++c) {
        const ClusterParams &ca = a.soc.clusters[c];
        const ClusterParams &cb = b.soc.clusters[c];
        EXPECT_EQ(ca.name, cb.name);
        EXPECT_EQ(ca.coreType.name, cb.coreType.name);
        EXPECT_EQ(ca.coreType.sizeFactor, cb.coreType.sizeFactor);
        EXPECT_EQ(ca.coreType.cyclesPerIteration,
                  cb.coreType.cyclesPerIteration);
        EXPECT_EQ(ca.coreCount, cb.coreCount);
        EXPECT_EQ(ca.idleDynamicFraction, cb.idleDynamicFraction);
        EXPECT_EQ(ca.offlineLeakFraction, cb.offlineLeakFraction);
        expectTablesEqual(ca.table, cb.table);
    }

    EXPECT_EQ(a.sensor.period.toUsec(), b.sensor.period.toUsec());
    EXPECT_EQ(a.sensor.quantum, b.sensor.quantum);
    EXPECT_EQ(a.sensor.noiseSigma, b.sensor.noiseSigma);
    EXPECT_EQ(a.sensor.offset, b.sensor.offset);

    ASSERT_EQ(a.thermalGov.trips.size(), b.thermalGov.trips.size());
    for (std::size_t t = 0; t < a.thermalGov.trips.size(); ++t) {
        EXPECT_EQ(a.thermalGov.trips[t].trip.value(),
                  b.thermalGov.trips[t].trip.value());
        EXPECT_EQ(a.thermalGov.trips[t].clear.value(),
                  b.thermalGov.trips[t].clear.value());
        EXPECT_EQ(a.thermalGov.trips[t].cap.value(),
                  b.thermalGov.trips[t].cap.value());
    }
    ASSERT_EQ(a.thermalGov.shutdowns.size(),
              b.thermalGov.shutdowns.size());
    for (std::size_t s = 0; s < a.thermalGov.shutdowns.size(); ++s) {
        EXPECT_EQ(a.thermalGov.shutdowns[s].trip.value(),
                  b.thermalGov.shutdowns[s].trip.value());
        EXPECT_EQ(a.thermalGov.shutdowns[s].clear.value(),
                  b.thermalGov.shutdowns[s].clear.value());
        EXPECT_EQ(a.thermalGov.shutdowns[s].coresOffline,
                  b.thermalGov.shutdowns[s].coresOffline);
    }
    EXPECT_EQ(a.thermalGov.pollPeriod.toUsec(),
              b.thermalGov.pollPeriod.toUsec());

    EXPECT_EQ(a.hasRbcpr, b.hasRbcpr);
    EXPECT_EQ(a.rbcpr.baseRecoup, b.rbcpr.baseRecoup);
    EXPECT_EQ(a.rbcpr.leakGain, b.rbcpr.leakGain);
    EXPECT_EQ(a.rbcpr.speedGain, b.rbcpr.speedGain);
    EXPECT_EQ(a.rbcpr.tempGain, b.rbcpr.tempGain);
    EXPECT_EQ(a.rbcpr.tRef.value(), b.rbcpr.tRef.value());
    EXPECT_EQ(a.rbcpr.maxRecoup, b.rbcpr.maxRecoup);
    EXPECT_EQ(a.rbcpr.period.toUsec(), b.rbcpr.period.toUsec());

    EXPECT_EQ(a.hasInputVoltageThrottle, b.hasInputVoltageThrottle);
    EXPECT_EQ(a.inputThrottle.engageBelow.value(),
              b.inputThrottle.engageBelow.value());
    EXPECT_EQ(a.inputThrottle.releaseAbove.value(),
              b.inputThrottle.releaseAbove.value());
    EXPECT_EQ(a.inputThrottle.cap.value(),
              b.inputThrottle.cap.value());
    EXPECT_EQ(a.inputThrottle.pollPeriod.toUsec(),
              b.inputThrottle.pollPeriod.toUsec());

    EXPECT_EQ(a.boardActive.value(), b.boardActive.value());
    EXPECT_EQ(a.boardSuspended.value(), b.boardSuspended.value());
    EXPECT_EQ(a.pmicEfficiency, b.pmicEfficiency);

    EXPECT_EQ(a.battery.capacityWh, b.battery.capacityWh);
    EXPECT_EQ(a.battery.internalResistance,
              b.battery.internalResistance);
    EXPECT_EQ(a.battery.age, b.battery.age);
    EXPECT_EQ(a.battery.nominal.value(), b.battery.nominal.value());
    EXPECT_EQ(a.battery.vFull.value(), b.battery.vFull.value());
    EXPECT_EQ(a.battery.vEmpty.value(), b.battery.vEmpty.value());

    EXPECT_EQ(a.initialAmbient.value(), b.initialAmbient.value());
    EXPECT_EQ(a.sensorSeed, b.sensorSeed);
    EXPECT_EQ(a.backgroundNoiseMean, b.backgroundNoiseMean);
    EXPECT_EQ(a.backgroundNoisePeriod.toUsec(),
              b.backgroundNoisePeriod.toUsec());
    EXPECT_EQ(a.tracePeriod.toUsec(), b.tracePeriod.toUsec());
}

/** Corners spanning the calibrated fleet's range, plus extremes. */
const UnitCorner probeCorners[] = {
    UnitCorner{"probe-slow", -2.0, -0.3, -0.01},
    UnitCorner{"probe-typ", 0.0, 0.0, 0.0},
    UnitCorner{"probe-fast", 2.0, 0.4, 0.01},
};

} // namespace

// ---------------------------------------------------------------------
// Spec <-> legacy equivalence, all six models.
// ---------------------------------------------------------------------

TEST(SpecEquivalence, Nexus5AllBins)
{
    for (int bin = 0; bin <= 6; ++bin) {
        SCOPED_TRACE(bin);
        expectConfigsEqual(legacy::n5::nexus5Config(bin),
                           nexus5Config(bin));
    }
}

TEST(SpecEquivalence, Nexus5BuiltDevices)
{
    for (const UnitCorner &corner : probeCorners) {
        SCOPED_TRACE(corner.id);
        expectConfigsEqual(legacy::n5::makeNexus5(2, corner)->config(),
                           makeNexus5(2, corner)->config());
    }
}

TEST(SpecEquivalence, Nexus6)
{
    expectConfigsEqual(legacy::n6::nexus6Config(), nexus6Config());
    for (const UnitCorner &corner : probeCorners) {
        SCOPED_TRACE(corner.id);
        expectConfigsEqual(legacy::n6::makeNexus6(corner)->config(),
                           makeNexus6(corner)->config());
    }
}

TEST(SpecEquivalence, Nexus6p)
{
    expectConfigsEqual(legacy::n6p::nexus6pConfig(), nexus6pConfig());
    for (const UnitCorner &corner : probeCorners) {
        SCOPED_TRACE(corner.id);
        expectConfigsEqual(legacy::n6p::makeNexus6p(corner)->config(),
                           makeNexus6p(corner)->config());
    }
}

TEST(SpecEquivalence, LgG5)
{
    expectConfigsEqual(legacy::g5::lgG5Config(), lgG5Config());
    for (const UnitCorner &corner : probeCorners) {
        SCOPED_TRACE(corner.id);
        expectConfigsEqual(legacy::g5::makeLgG5(corner)->config(),
                           makeLgG5(corner)->config());
    }
}

TEST(SpecEquivalence, Pixel)
{
    expectConfigsEqual(legacy::px::pixelConfig(), pixelConfig());
    for (const UnitCorner &corner : probeCorners) {
        SCOPED_TRACE(corner.id);
        expectConfigsEqual(legacy::px::makePixel(corner)->config(),
                           makePixel(corner)->config());
    }
}

TEST(SpecEquivalence, Pixel2)
{
    expectConfigsEqual(legacy::p2::pixel2Config(), pixel2Config());
    for (const UnitCorner &corner : probeCorners) {
        SCOPED_TRACE(corner.id);
        expectConfigsEqual(legacy::p2::makePixel2(corner)->config(),
                           makePixel2(corner)->config());
    }
}

// ---------------------------------------------------------------------
// Registry behaviour.
// ---------------------------------------------------------------------

TEST(Registry, FindBySocAndModel)
{
    const DeviceRegistry &r = DeviceRegistry::builtin();
    EXPECT_EQ(r.find("SD-800"), r.find("Nexus 5"));
    EXPECT_EQ(r.find("SD-835"), r.find("Google Pixel 2"));
    EXPECT_EQ(r.find("SD-999"), nullptr);
    EXPECT_EQ(r.entries().size(), 6u);
}

TEST(Registry, StudySocNamesMatchPaperOrder)
{
    const std::vector<std::string> expected = {
        "SD-800", "SD-805", "SD-810", "SD-820", "SD-821",
    };
    EXPECT_EQ(DeviceRegistry::builtin().studySocNames(), expected);
    EXPECT_EQ(studySocNames(), expected); // legacy alias
}

TEST(Registry, FindUnit)
{
    const DeviceRegistry &r = DeviceRegistry::builtin();

    UnitRef bare = r.findUnit("dev-363");
    ASSERT_NE(bare.entry, nullptr);
    EXPECT_EQ(bare.entry->spec.socName, "SD-810");
    EXPECT_EQ(bare.entry->units[bare.unitIndex].id, "dev-363");

    UnitRef qualified = r.findUnit("SD-820:unit-3");
    ASSERT_NE(qualified.entry, nullptr);
    EXPECT_EQ(qualified.entry->spec.model, "LG G5");
    EXPECT_EQ(qualified.entry->units[qualified.unitIndex].id, "unit-3");

    EXPECT_EQ(r.findUnit("no-such-unit").entry, nullptr);
    EXPECT_EQ(r.findUnit("SD-800:dev-363").entry, nullptr);
}

TEST(Registry, BuildFleetMatchesLegacyFleets)
{
    // The registry-built fleet must be the same units, same order,
    // same configs as the legacy per-model fleet functions produced.
    struct Case
    {
        const char *soc;
        std::vector<std::unique_ptr<Device>> legacyFleet;
    };
    std::vector<Case> cases;
    {
        Case n5{"SD-800", {}};
        n5.legacyFleet.push_back(legacy::n5::makeNexus5(
            0, UnitCorner{"bin-0", -1.75, +0.15, 0.0}));
        n5.legacyFleet.push_back(legacy::n5::makeNexus5(
            1, UnitCorner{"bin-1", -0.70, -0.10, 0.0}));
        n5.legacyFleet.push_back(legacy::n5::makeNexus5(
            2, UnitCorner{"bin-2", +0.30, +0.10, 0.0}));
        n5.legacyFleet.push_back(legacy::n5::makeNexus5(
            3, UnitCorner{"bin-3", +1.25, +0.10, 0.0}));
        cases.push_back(std::move(n5));

        Case g5{"SD-820", {}};
        g5.legacyFleet.push_back(
            legacy::g5::makeLgG5(UnitCorner{"unit-1", -1.00, -0.25, 0.0}));
        g5.legacyFleet.push_back(
            legacy::g5::makeLgG5(UnitCorner{"unit-2", -0.40, +0.05, 0.0}));
        g5.legacyFleet.push_back(
            legacy::g5::makeLgG5(UnitCorner{"unit-3", 0.00, 0.00, 0.0}));
        g5.legacyFleet.push_back(
            legacy::g5::makeLgG5(UnitCorner{"unit-4", +0.50, +0.10, 0.0}));
        g5.legacyFleet.push_back(
            legacy::g5::makeLgG5(UnitCorner{"unit-5", +1.00, +0.35, 0.0}));
        cases.push_back(std::move(g5));
    }

    for (const Case &c : cases) {
        SCOPED_TRACE(c.soc);
        Fleet fleet = fleetForSoc(c.soc);
        ASSERT_EQ(fleet.size(), c.legacyFleet.size());
        for (std::size_t u = 0; u < fleet.size(); ++u) {
            SCOPED_TRACE(u);
            EXPECT_EQ(fleet[u]->unitId(), c.legacyFleet[u]->unitId());
            expectConfigsEqual(fleet[u]->config(),
                               c.legacyFleet[u]->config());
        }
    }
}

// ---------------------------------------------------------------------
// JSON round-trip.
// ---------------------------------------------------------------------

namespace
{

/** serialize -> parse -> rebuild -> serialize must be a fixpoint. */
void
expectSpecRoundTrips(const DeviceSpec &spec)
{
    std::string first = toJson(spec);
    JsonValue doc;
    std::string error;
    ASSERT_TRUE(parseJson(first, doc, error)) << error;
    DeviceSpec rebuilt = specFromJson(doc);
    EXPECT_EQ(toJson(rebuilt), first);

    // The rebuilt spec must also materialize identical configs.
    expectConfigsEqual(resolveDeviceConfig(spec, spec.defaultBin),
                       resolveDeviceConfig(rebuilt, rebuilt.defaultBin));
    UnitCorner corner{"rt-probe", 0.7, 0.1, 0.002};
    expectConfigsEqual(buildDevice(spec, corner)->config(),
                       buildDevice(rebuilt, corner)->config());
}

} // namespace

TEST(SpecJson, EveryBuiltinSpecRoundTrips)
{
    for (const RegistryEntry &e : DeviceRegistry::builtin().entries()) {
        SCOPED_TRACE(e.spec.model);
        expectSpecRoundTrips(e.spec);
    }
}

TEST(SpecJson, FleetDocumentRoundTrips)
{
    const std::vector<RegistryEntry> &entries =
        DeviceRegistry::builtin().entries();
    std::string first = fleetToJson(entries);

    JsonValue doc;
    std::string error;
    ASSERT_TRUE(parseJson(first, doc, error)) << error;
    std::vector<RegistryEntry> rebuilt = fleetFromJson(doc);

    ASSERT_EQ(rebuilt.size(), entries.size());
    for (std::size_t i = 0; i < entries.size(); ++i) {
        SCOPED_TRACE(entries[i].spec.model);
        EXPECT_EQ(rebuilt[i].fixedFrequency.value(),
                  entries[i].fixedFrequency.value());
        EXPECT_EQ(rebuilt[i].monsoonVoltage.value(),
                  entries[i].monsoonVoltage.value());
        EXPECT_EQ(rebuilt[i].inStudy, entries[i].inStudy);
        ASSERT_EQ(rebuilt[i].units.size(), entries[i].units.size());
        for (std::size_t u = 0; u < entries[i].units.size(); ++u) {
            EXPECT_EQ(rebuilt[i].units[u].id, entries[i].units[u].id);
            EXPECT_EQ(rebuilt[i].units[u].corner,
                      entries[i].units[u].corner);
            EXPECT_EQ(rebuilt[i].units[u].leakResidual,
                      entries[i].units[u].leakResidual);
            EXPECT_EQ(rebuilt[i].units[u].vthOffset,
                      entries[i].units[u].vthOffset);
            EXPECT_EQ(rebuilt[i].units[u].bin, entries[i].units[u].bin);
        }
    }

    // Fixpoint: the rebuilt fleet serializes to the same document.
    EXPECT_EQ(fleetToJson(rebuilt), first);
}

TEST(SpecJson, BaseReferenceResolvesAgainstBuiltins)
{
    const char *text = R"({
      "fleet": [ {
        "base": "SD-810",
        "units": [ { "id": "lab-1", "corner": -2.0 } ]
      } ]
    })";
    JsonValue doc;
    std::string error;
    ASSERT_TRUE(parseJson(text, doc, error)) << error;
    std::vector<RegistryEntry> fleet = fleetFromJson(doc);

    ASSERT_EQ(fleet.size(), 1u);
    EXPECT_EQ(fleet[0].spec.model, "Nexus 6P");
    EXPECT_EQ(fleet[0].fixedFrequency.value(), 864.0);
    ASSERT_EQ(fleet[0].units.size(), 1u);
    EXPECT_EQ(fleet[0].units[0].id, "lab-1");

    // The derived entry builds the same device the catalog would.
    UnitCorner corner{"lab-1", -2.0, 0.0, 0.0};
    expectConfigsEqual(buildDevice(fleet[0].spec, corner)->config(),
                       legacy::n6p::makeNexus6p(corner)->config());
}

TEST(SpecJson, SaveLoadFleetFile)
{
    std::string path =
        testing::TempDir() + "/pvar_spec_json_fleet.json";
    const std::vector<RegistryEntry> &entries =
        DeviceRegistry::builtin().entries();
    saveFleetFile(path, entries);
    std::vector<RegistryEntry> loaded = loadFleetFile(path);
    ASSERT_EQ(loaded.size(), entries.size());
    EXPECT_EQ(fleetToJson(loaded), fleetToJson(entries));
}

// ---------------------------------------------------------------------
// V-F interpolation helper (the hoisted interpolateMv).
// ---------------------------------------------------------------------

TEST(VfTableAnchors, MatchesLegacyInterpolation)
{
    std::vector<double> anchor_mhz(std::begin(legacy::n5::tableIFreqs),
                                   std::end(legacy::n5::tableIFreqs));
    for (int bin = 0; bin <= 6; ++bin) {
        std::vector<double> anchor_mv(
            std::begin(legacy::n5::tableIMv[bin]),
            std::end(legacy::n5::tableIMv[bin]));
        // Probe below, on, between, and above the anchors.
        for (double f : {250.0, 300.0, 500.0, 960.0, 1190.0, 2265.0,
                         2600.0}) {
            EXPECT_EQ(interpolateAnchorMv(anchor_mhz, anchor_mv, f),
                      legacy::n5::interpolateMv(bin, f))
                << "bin " << bin << " freq " << f;
        }
    }
}

TEST(VfTableAnchors, ExpandsLadder)
{
    std::vector<double> ladder = {300, 600, 960};
    std::vector<double> anchors = {300, 960};
    std::vector<double> mv = {800, 900};
    VfTable table = vfTableFromAnchors(ladder, anchors, mv);
    ASSERT_EQ(table.size(), 3u);
    EXPECT_EQ(table.point(0).voltage.value(), 0.800);
    EXPECT_EQ(table.point(1).voltage.value(),
              Volts::fromMillivolts(800 + (600.0 - 300.0) /
                                              (960.0 - 300.0) * 100.0)
                  .value());
    EXPECT_EQ(table.point(2).voltage.value(), 0.900);
}
