file(REMOVE_RECURSE
  "CMakeFiles/pvar_report.dir/report/figure.cc.o"
  "CMakeFiles/pvar_report.dir/report/figure.cc.o.d"
  "CMakeFiles/pvar_report.dir/report/json.cc.o"
  "CMakeFiles/pvar_report.dir/report/json.cc.o.d"
  "CMakeFiles/pvar_report.dir/report/table.cc.o"
  "CMakeFiles/pvar_report.dir/report/table.cc.o.d"
  "libpvar_report.a"
  "libpvar_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pvar_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
