/**
 * @file
 * Sample-size (lower-bound) study, paper §VII third contribution.
 *
 * "It only takes two devices to observe variations. While our study
 * of SoCs is limited, at times with only 3 devices to represent an
 * SoC generation, the process variations shown in Table II can be
 * considered as a minimum lower-bound to the overall variation."
 *
 * This module quantifies that statement: it Monte-Carlo-samples
 * fleets of n units from the process distribution, runs the
 * UNCONSTRAINED experiment on each, and reports how the *observed*
 * performance spread grows with n — showing the paper's 3-4 unit
 * numbers systematically underestimate the population spread.
 */

#ifndef PVAR_SAMPLING_LOWER_BOUND_HH
#define PVAR_SAMPLING_LOWER_BOUND_HH

#include <string>
#include <vector>

#include "accubench/accubench.hh"

namespace pvar
{

/** Study parameters. */
struct LowerBoundConfig
{
    /** The SoC population to sample. */
    std::string socName = "SD-821";

    /** Fleet sizes to evaluate. */
    std::vector<int> sampleSizes = {2, 3, 5, 8};

    /** Monte-Carlo replicates per fleet size. */
    int replicates = 5;

    /** Seed for fleet sampling. */
    std::uint64_t seed = 1;

    /** Sigma of the latent process deviate in the population. */
    double cornerSigma = 1.0;

    /** ACCUBENCH iterations per unit (1 suffices for the spread). */
    int iterations = 1;

    /** Technique parameters (shorten for quick studies). */
    AccubenchConfig accubench;

    /**
     * Worker threads for the unit-experiment fan-out. Corners are
     * drawn serially in (size, replicate, unit) order before any
     * experiment starts, so results are bit-identical for any jobs
     * value. 1 = serial (default); <= 0 = all hardware threads.
     */
    int jobs = 1;

    /**
     * Thermal solver for every unit's experiment (same contract as
     * StudyConfig::solver).
     */
    SolverKind solver = SolverKind::Stepped;

    /**
     * Die-cohort width for the batched experiment engine; per-unit
     * results are bit-identical for any value (see CrowdConfig::batch).
     * 0 (default) = engine pick.
     */
    int batch = 0;
};

/** Result for one fleet size. */
struct LowerBoundPoint
{
    int sampleSize = 0;

    /** Mean observed perf spread across replicates (percent). */
    double meanSpreadPercent = 0.0;

    /** Smallest / largest observed spread across replicates. */
    double minSpreadPercent = 0.0;
    double maxSpreadPercent = 0.0;
};

/**
 * Run the Monte-Carlo sample-size study.
 *
 * The returned points are ordered as cfg.sampleSizes. Deterministic
 * for a given seed.
 */
std::vector<LowerBoundPoint> sampleSizeStudy(const LowerBoundConfig &cfg);

} // namespace pvar

#endif // PVAR_SAMPLING_LOWER_BOUND_HH
