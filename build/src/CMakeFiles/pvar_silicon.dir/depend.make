# Empty dependencies file for pvar_silicon.
# This may be replaced when dependencies are built.
