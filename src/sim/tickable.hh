/**
 * @file
 * Interface for components advanced by the co-simulation loop.
 */

#ifndef PVAR_SIM_TICKABLE_HH
#define PVAR_SIM_TICKABLE_HH

#include <string>

#include "sim/time.hh"

namespace pvar
{

/**
 * A component that evolves in fixed time steps.
 *
 * The Simulator calls tick() on every registered component each step,
 * in registration order. Registration order therefore encodes the data
 * flow of one step: workload -> power -> thermal -> sensors -> governors.
 */
class Tickable
{
  public:
    virtual ~Tickable() = default;

    /**
     * Advance the component.
     *
     * @param now simulation time at the *end* of the step.
     * @param dt length of the step.
     */
    virtual void tick(Time now, Time dt) = 0;

    /**
     * Latest time this component can be advanced to in one tick
     * without losing behavior, given the simulator is at `now` with
     * base step `base_dt`.
     *
     * Components that handle their own internal event cadence (the
     * analytic thermal fast path) report a horizon far beyond
     * `base_dt`; the default pins the component to base stepping,
     * which keeps unknown components correct in event-driven mode.
     */
    virtual Time nextBoundary(Time now, Time base_dt) const
    {
        return now + base_dt;
    }

    /** Diagnostic name used in traces and log messages. */
    virtual std::string name() const = 0;
};

} // namespace pvar

#endif // PVAR_SIM_TICKABLE_HH
