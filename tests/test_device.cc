/**
 * @file
 * Integration tests for the assembled Device.
 */

#include <gtest/gtest.h>

#include "device/catalog.hh"
#include "device/fleet.hh"
#include "power/monsoon.hh"
#include "silicon/process_node.hh"
#include "silicon/variation_model.hh"
#include "sim/simulator.hh"

namespace pvar
{
namespace
{

std::unique_ptr<Device>
typicalNexus5()
{
    return makeNexus5(2, UnitCorner{"test", 0.0, 0.0, 0.0});
}

TEST(Device, IdentityStrings)
{
    auto d = typicalNexus5();
    EXPECT_EQ(d->model(), "Nexus 5");
    EXPECT_EQ(d->socName(), "SD-800");
    EXPECT_EQ(d->unitId(), "test");
    EXPECT_EQ(d->name(), "Nexus 5/test");
}

TEST(Device, HeatsUnderLoadCoolsWhenStopped)
{
    auto d = typicalNexus5();
    Simulator sim(Time::msec(10));
    sim.add(d.get());
    d->acquireWakelock();

    double t0 = d->thermalPackage().dieTemp().value();
    d->startWorkload(CpuIntensiveWorkload{});
    sim.runFor(Time::sec(60));
    double t1 = d->thermalPackage().dieTemp().value();
    EXPECT_GT(t1, t0 + 10.0);

    d->stopWorkload();
    sim.runFor(Time::sec(60));
    double t2 = d->thermalPackage().dieTemp().value();
    EXPECT_LT(t2, t1 - 5.0);
}

TEST(Device, EnergyAccruesWithTime)
{
    auto d = typicalNexus5();
    Simulator sim(Time::msec(10));
    sim.add(d.get());
    d->acquireWakelock();
    d->startWorkload(CpuIntensiveWorkload{});
    sim.runFor(Time::sec(10));
    double e10 = d->energyMeter().total().value();
    sim.runFor(Time::sec(10));
    double e20 = d->energyMeter().total().value();
    EXPECT_GT(e10, 10.0); // several watts for 10 s
    EXPECT_GT(e20, 1.9 * e10);
}

TEST(Device, ThrottlesAtSustainedLoad)
{
    // A leaky Nexus 5 at max frequency must engage mitigation within
    // a few minutes and lose frequency.
    auto d = makeNexus5(3, UnitCorner{"leaky", 1.3, 0.3, 0.0});
    Simulator sim(Time::msec(10));
    sim.add(d.get());
    d->acquireWakelock();
    d->setPerformanceMode();
    d->startWorkload(CpuIntensiveWorkload{});
    sim.runFor(Time::minutes(8));
    EXPECT_TRUE(d->thermalGovernor().mitigating());
    EXPECT_LT(d->soc().cluster(0).frequency().value(), 2265.0);
}

TEST(Device, FixedFrequencyPinsAllClusters)
{
    auto d = typicalNexus5();
    d->setFixedFrequency(MegaHertz(1190));
    Simulator sim(Time::msec(10));
    sim.add(d.get());
    d->acquireWakelock();
    d->startWorkload(CpuIntensiveWorkload{});
    sim.runFor(Time::sec(5));
    EXPECT_DOUBLE_EQ(d->soc().cluster(0).frequency().value(), 1190.0);
    sim.runFor(Time::minutes(2));
    EXPECT_DOUBLE_EQ(d->soc().cluster(0).frequency().value(), 1190.0);
}

TEST(Device, SuspendGatesPowerAndWork)
{
    auto d = typicalNexus5();
    Simulator sim(Time::msec(10));
    sim.add(d.get());
    // No wakelock, suspend allowed: the device sleeps.
    d->setSuspendAllowed(true);
    sim.runFor(Time::sec(5));
    EXPECT_TRUE(d->suspended());
    EXPECT_LT(d->lastPower().value(), 0.1);

    // A wakelock brings it back.
    d->acquireWakelock();
    sim.step();
    EXPECT_FALSE(d->suspended());
    d->releaseWakelock();
    sim.step();
    EXPECT_TRUE(d->suspended());
}

TEST(Device, StayAwakeWindowWorks)
{
    auto d = typicalNexus5();
    Simulator sim(Time::msec(10));
    sim.add(d.get());
    d->setSuspendAllowed(true);
    sim.runFor(Time::sec(1));
    EXPECT_TRUE(d->suspended());

    d->stayAwakeUntil(sim.now() + Time::msec(100));
    sim.step();
    EXPECT_FALSE(d->suspended());
    sim.runFor(Time::msec(200));
    EXPECT_TRUE(d->suspended());
}

TEST(Device, ExternalSupplySwapsSource)
{
    auto d = typicalNexus5();
    Monsoon monsoon(Volts(4.2));
    d->attachExternalSupply(&monsoon);
    Simulator sim(Time::msec(10));
    sim.add(d.get());
    d->acquireWakelock();
    d->startWorkload(CpuIntensiveWorkload{});
    sim.runFor(Time::sec(5));
    EXPECT_GT(monsoon.lifetimeEnergy().value(), 1.0);
    EXPECT_NEAR(d->supplyVoltage().value(), 4.2, 0.1);
    double soc_before = d->battery().stateOfCharge();
    EXPECT_DOUBLE_EQ(soc_before, 1.0); // battery untouched
}

TEST(Device, BatterySupplyDrains)
{
    auto d = typicalNexus5();
    Simulator sim(Time::msec(10));
    sim.add(d.get());
    d->acquireWakelock();
    d->startWorkload(CpuIntensiveWorkload{});
    sim.runFor(Time::minutes(2));
    EXPECT_LT(d->battery().stateOfCharge(), 1.0);
}

TEST(Device, TraceRecordsExpectedChannels)
{
    auto d = typicalNexus5();
    Trace trace;
    d->attachTrace(&trace);
    Simulator sim(Time::msec(10));
    sim.add(d.get());
    d->acquireWakelock();
    d->startWorkload(CpuIntensiveWorkload{});
    sim.runFor(Time::sec(5));

    for (const char *ch : {"die_temp", "case_temp", "power_w",
                           "supply_v", "online_cores", "freq_cpu"})
        EXPECT_TRUE(trace.hasChannel(ch)) << ch;
    EXPECT_GE(trace.channel("die_temp").size(), 9u);
}

TEST(Device, SoakSetsThermalState)
{
    auto d = typicalNexus5();
    d->soakTo(Celsius(35.0));
    EXPECT_DOUBLE_EQ(d->thermalPackage().dieTemp().value(), 35.0);
    EXPECT_NEAR(d->readCpuTemp().value(), 35.0, 1.5);
}

TEST(Device, ResetExperimentStateClearsGovernors)
{
    auto d = makeNexus5(3, UnitCorner{"leaky", 1.3, 0.3, 0.0});
    Simulator sim(Time::msec(10));
    sim.add(d.get());
    d->acquireWakelock();
    d->startWorkload(CpuIntensiveWorkload{});
    sim.runFor(Time::minutes(8));
    ASSERT_TRUE(d->thermalGovernor().mitigating());
    d->stopWorkload();
    d->resetExperimentState();
    EXPECT_FALSE(d->thermalGovernor().mitigating());
    EXPECT_DOUBLE_EQ(d->energyMeter().total().value(), 0.0);
    EXPECT_DOUBLE_EQ(d->iterations(), 0.0);
}

TEST(Device, InteractiveModeScalesWithLoad)
{
    auto d = typicalNexus5();
    d->setInteractiveMode();
    Simulator sim(Time::msec(10));
    sim.add(d.get());
    d->acquireWakelock();

    // A light workload settles at a low-to-mid OPP...
    CpuIntensiveWorkload light;
    light.utilization = 0.25;
    d->startWorkload(light);
    sim.runFor(Time::sec(10));
    double light_freq = d->soc().cluster(0).frequency().value();
    double light_power = d->lastPower().value();
    EXPECT_LT(light_freq, 2265.0);

    // ...and a heavy one races to the top.
    CpuIntensiveWorkload heavy;
    heavy.utilization = 1.0;
    d->startWorkload(heavy);
    sim.runFor(Time::sec(10));
    EXPECT_DOUBLE_EQ(d->soc().cluster(0).frequency().value(), 2265.0);
    EXPECT_GT(d->lastPower().value(), light_power * 1.5);
}

TEST(Device, MakeUnitForSocCoversCatalog)
{
    for (const auto &soc : studySocNames()) {
        auto d = makeUnitForSoc(soc, UnitCorner{"u", 0.2, 0.1, 0.0});
        EXPECT_EQ(d->socName(), soc);
        EXPECT_EQ(d->unitId(), "u");
    }
    EXPECT_DEATH((void)makeUnitForSoc("SD-1", UnitCorner{}), "");
}

TEST(Device, BackgroundNoisePerturbsScores)
{
    // Two identical dies, different noise seeds: with background
    // noise configured, scores differ slightly but systematically
    // stay within a fraction of a percent.
    DeviceConfig cfg = nexus5Config(2);
    cfg.backgroundNoiseMean = 0.01;
    cfg.backgroundNoisePeriod = Time::sec(5);

    VariationModel model(node28nmHPm());
    double scores[2];
    for (int i = 0; i < 2; ++i) {
        DeviceConfig c = cfg;
        c.sensorSeed = 0x1000u + static_cast<unsigned>(i);
        Device device(std::move(c),
                      model.dieAtCorner(0, 0, 0, "noise"));
        Simulator sim(Time::msec(10));
        sim.add(&device);
        device.acquireWakelock();
        device.setFixedFrequency(MegaHertz(1190));
        device.startWorkload(CpuIntensiveWorkload{});
        sim.runFor(Time::minutes(2));
        scores[i] = device.iterations();
    }
    EXPECT_NE(scores[0], scores[1]);
    EXPECT_NEAR(scores[0] / scores[1], 1.0, 0.05);
}

TEST(Device, NoiseDisabledIsDeterministicAcrossSeeds)
{
    DeviceConfig cfg = nexus5Config(2);
    cfg.backgroundNoiseMean = 0.0;
    cfg.sensor.noiseSigma = 0.0;

    VariationModel model(node28nmHPm());
    double scores[2];
    for (int i = 0; i < 2; ++i) {
        DeviceConfig c = cfg;
        c.sensorSeed = 0x2000u + static_cast<unsigned>(i);
        Device device(std::move(c),
                      model.dieAtCorner(0, 0, 0, "det"));
        Simulator sim(Time::msec(10));
        sim.add(&device);
        device.acquireWakelock();
        device.setFixedFrequency(MegaHertz(1190));
        device.startWorkload(CpuIntensiveWorkload{});
        sim.runFor(Time::minutes(2));
        scores[i] = device.iterations();
    }
    EXPECT_DOUBLE_EQ(scores[0], scores[1]);
}

TEST(Device, CatalogModelsConstructAndRun)
{
    // Every catalog model assembles and survives a minute of load.
    std::vector<std::unique_ptr<Device>> devices;
    devices.push_back(makeNexus5(0, UnitCorner{"a", 0, 0, 0}));
    devices.push_back(makeNexus6(UnitCorner{"b", 0, 0, 0}));
    devices.push_back(makeNexus6p(UnitCorner{"c", 0, 0, 0}));
    devices.push_back(makeLgG5(UnitCorner{"d", 0, 0, 0}));
    devices.push_back(makePixel(UnitCorner{"e", 0, 0, 0}));

    for (auto &d : devices) {
        Simulator sim(Time::msec(10));
        sim.add(d.get());
        d->acquireWakelock();
        d->startWorkload(CpuIntensiveWorkload{});
        sim.runFor(Time::minutes(1));
        EXPECT_GT(d->iterations(), 0.0) << d->name();
        EXPECT_GT(d->lastPower().value(), 0.5) << d->name();
        EXPECT_GT(d->thermalPackage().dieTemp().value(), 27.0)
            << d->name();
    }
}

TEST(Device, Nexus5TableMatchesTableI)
{
    // The catalog embeds paper Table I; spot-check the corners.
    EXPECT_DOUBLE_EQ(nexus5TableIMillivolts(0, 2265), 1100);
    EXPECT_DOUBLE_EQ(nexus5TableIMillivolts(6, 2265), 950);
    EXPECT_DOUBLE_EQ(nexus5TableIMillivolts(0, 300), 800);
    EXPECT_DOUBLE_EQ(nexus5TableIMillivolts(6, 300), 750);
    EXPECT_DOUBLE_EQ(nexus5TableIMillivolts(3, 960), 820);

    VfTable bin0 = nexus5BinTable(0);
    EXPECT_NEAR(bin0.voltageFor(MegaHertz(2265)).toMillivolts(), 1100,
                1e-9);
    VfTable bin6 = nexus5BinTable(6);
    EXPECT_NEAR(bin6.voltageFor(MegaHertz(729)).toMillivolts(), 760,
                1e-9);
}

TEST(Device, Nexus5BinTablesMonotoneAcrossBins)
{
    for (int bin = 0; bin < 6; ++bin) {
        VfTable hi = nexus5BinTable(bin);
        VfTable lo = nexus5BinTable(bin + 1);
        for (std::size_t i = 0; i < hi.size(); ++i)
            EXPECT_GE(hi.point(i).voltage.value(),
                      lo.point(i).voltage.value())
                << "bins " << bin << "/" << bin + 1 << " at OPP " << i;
    }
}

TEST(Device, Pixel2ExtensionConstructsAndRuns)
{
    auto d = makePixel2(UnitCorner{"p2", 0.3, 0.1, 0.0});
    EXPECT_EQ(d->socName(), "SD-835");
    EXPECT_EQ(d->soc().clusterCount(), 2u);
    EXPECT_EQ(d->soc().totalCores(), 8);

    Simulator sim(Time::msec(10));
    sim.add(d.get());
    d->acquireWakelock();
    d->startWorkload(CpuIntensiveWorkload{});
    sim.runFor(Time::minutes(1));
    EXPECT_GT(d->iterations(), 0.0);
    EXPECT_GT(d->lastPower().value(), 0.5);
}

TEST(Device, TenNanometerNodeContinuesTrends)
{
    // The extension node must continue the physical trends of the
    // series: lower nominal voltage and smaller speed sigma than the
    // 14 nm node it succeeds.
    ProcessNode n14 = node14nmFinFET();
    ProcessNode n10 = node10nmLPE();
    EXPECT_LT(n10.vNominal.value(), n14.vNominal.value());
    EXPECT_LE(n10.sigmaSpeed, n14.sigmaSpeed);
    EXPECT_LT(n10.feature_nm, n14.feature_nm);
}

TEST(Device, FleetsHaveStudySizes)
{
    EXPECT_EQ(nexus5Fleet().size(), 4u);
    EXPECT_EQ(nexus6Fleet().size(), 3u);
    EXPECT_EQ(nexus6pFleet().size(), 3u);
    EXPECT_EQ(lgG5Fleet().size(), 5u);
    EXPECT_EQ(pixelFleet().size(), 3u);
}

TEST(Device, FleetHelpers)
{
    EXPECT_EQ(studySocNames().size(), 5u);
    EXPECT_EQ(fleetForSoc("SD-810").size(), 3u);
    EXPECT_DOUBLE_EQ(fixedFrequencyForSoc("SD-800").value(), 1574.0);
    EXPECT_DOUBLE_EQ(studyMonsoonVoltageForSoc("SD-820").value(), 4.40);
    EXPECT_DEATH((void)fleetForSoc("SD-999"), "");
}

} // namespace
} // namespace pvar
