/**
 * @file
 * Deterministic random number generation.
 *
 * Every stochastic element in the library (die sampling, sensor noise,
 * ambient jitter) draws from an Rng seeded explicitly by the caller, so
 * experiments are exactly reproducible. The generator is xoshiro256**
 * seeded through splitmix64, which is both fast and statistically strong
 * enough for Monte-Carlo style sampling.
 */

#ifndef PVAR_SIM_RNG_HH
#define PVAR_SIM_RNG_HH

#include <cstdint>

#include "sim/bytes.hh"

namespace pvar
{

/**
 * A small, fast, deterministic PRNG (xoshiro256**).
 */
class Rng
{
  public:
    /** Construct from a 64-bit seed; equal seeds yield equal streams. */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

    /** Next raw 64-bit draw. */
    std::uint64_t next();

    /** Uniform double in [0, 1). */
    double uniform();

    /** Uniform double in [lo, hi). */
    double uniform(double lo, double hi);

    /** Uniform integer in [lo, hi] (inclusive). */
    std::int64_t uniformInt(std::int64_t lo, std::int64_t hi);

    /** Standard normal draw (Box-Muller, cached spare). */
    double gaussian();

    /** Normal draw with the given mean and standard deviation. */
    double gaussian(double mean, double sigma);

    /**
     * Log-normal draw: exp(N(mu, sigma)).
     *
     * @param mu mean of the underlying normal.
     * @param sigma standard deviation of the underlying normal.
     */
    double lognormal(double mu, double sigma);

    /**
     * Derive an independent child generator.
     *
     * Forking keeps module streams decoupled: drawing more samples in
     * one module does not perturb the sequence another module sees.
     *
     * @param stream distinguishing label mixed into the child seed.
     */
    Rng fork(std::uint64_t stream);

    /**
     * Serialize the full generator state (xoshiro words plus the
     * Box-Muller spare) so a restored Rng continues the exact stream.
     */
    void
    saveState(ByteWriter &w) const
    {
        for (std::uint64_t word : _s)
            w.u64(word);
        w.f64(_spare);
        w.u8(_hasSpare ? 1 : 0);
    }

    bool
    loadState(ByteReader &r)
    {
        std::uint8_t has_spare = 0;
        for (std::uint64_t &word : _s)
            if (!r.u64(word))
                return false;
        if (!r.f64(_spare) || !r.u8(has_spare) || has_spare > 1)
            return false;
        _hasSpare = has_spare != 0;
        return true;
    }

  private:
    std::uint64_t _s[4];
    double _spare;
    bool _hasSpare;
};

} // namespace pvar

#endif // PVAR_SIM_RNG_HH
