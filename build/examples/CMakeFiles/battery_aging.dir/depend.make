# Empty dependencies file for battery_aging.
# This may be replaced when dependencies are built.
