# Empty dependencies file for bench_fig3_thermabox.
# This may be replaced when dependencies are built.
