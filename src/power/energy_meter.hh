/**
 * @file
 * Phase-aware energy accounting.
 *
 * ACCUBENCH needs per-phase energy (warmup vs cooldown vs workload);
 * EnergyMeter integrates power over time and lets callers mark phase
 * boundaries, retrieving the energy of each named span afterwards.
 */

#ifndef PVAR_POWER_ENERGY_METER_HH
#define PVAR_POWER_ENERGY_METER_HH

#include <string>
#include <vector>

#include "sim/time.hh"
#include "sim/units.hh"

namespace pvar
{

/** One closed accounting span. */
struct EnergySpan
{
    std::string label;
    Time start;
    Time end;
    Joules energy;
};

/**
 * Accumulates energy and slices it into labeled spans.
 */
class EnergyMeter
{
  public:
    EnergyMeter();

    /** Integrate `p` over `dt` ending at `now`. */
    void accumulate(Watts p, Time now, Time dt);

    /** Total energy since construction (or reset). */
    Joules total() const { return _total; }

    /**
     * Open a new labeled span at `now`, closing any open span first.
     */
    void beginSpan(const std::string &label, Time now);

    /** Close the open span at `now`; no-op when none is open. */
    void endSpan(Time now);

    /** All closed spans, oldest first. */
    const std::vector<EnergySpan> &spans() const { return _spans; }

    /**
     * Sum of the energies of all closed spans with the given label.
     */
    Joules energyOf(const std::string &label) const;

    /** Forget everything. */
    void reset();

  private:
    Joules _total;
    std::vector<EnergySpan> _spans;
    bool _open;
    std::string _openLabel;
    Time _openStart;
    Joules _openStartEnergy;
};

} // namespace pvar

#endif // PVAR_POWER_ENERGY_METER_HH
