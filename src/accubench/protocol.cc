#include "accubench/protocol.hh"

#include "sim/logging.hh"
#include "stats/summary.hh"

namespace pvar
{

SocStudy
reduceSocStudy(const std::string &soc_name, const std::string &model,
               const std::vector<ExperimentResult> &unconstrained,
               const std::vector<ExperimentResult> &fixed_freq)
{
    if (unconstrained.size() != fixed_freq.size())
        fatal("reduceSocStudy: mismatched experiment lists (%zu vs %zu)",
              unconstrained.size(), fixed_freq.size());

    SocStudy study;
    study.socName = soc_name;
    study.model = model;

    std::vector<double> mean_scores;
    std::vector<double> mean_fixed_energies;
    std::vector<double> mean_fixed_scores;
    OnlineSummary rsd_acc;
    OnlineSummary efficiency_acc;

    for (std::size_t i = 0; i < unconstrained.size(); ++i) {
        const ExperimentResult &unc = unconstrained[i];
        const ExperimentResult &fix = fixed_freq[i];

        UnitOutcome unit;
        unit.unitId = unc.unitId;
        unit.meanScore = unc.meanScore();
        unit.scoreRsdPercent = unc.scoreRsdPercent();
        unit.meanUnconstrainedEnergyJ = unc.meanWorkloadEnergy().value();
        unit.meanFixedEnergyJ = fix.meanWorkloadEnergy().value();
        unit.fixedEnergyRsdPercent = fix.energyRsdPercent();
        unit.meanFixedScore = fix.meanScore();
        unit.fixedScoreRsdPercent = fix.scoreRsdPercent();
        study.units.push_back(unit);

        mean_scores.push_back(unit.meanScore);
        mean_fixed_energies.push_back(unit.meanFixedEnergyJ);
        mean_fixed_scores.push_back(unit.meanFixedScore);
        rsd_acc.add(unit.scoreRsdPercent);

        if (unit.meanUnconstrainedEnergyJ > 0.0) {
            efficiency_acc.add(unit.meanScore /
                               (unit.meanUnconstrainedEnergyJ / 3600.0));
        }
    }

    study.perfVariationPercent = relativeSpread(mean_scores) * 100.0;
    study.energyVariationPercent =
        relativeExcess(mean_fixed_energies) * 100.0;
    study.fixedPerfSpreadPercent =
        relativeSpread(mean_fixed_scores) * 100.0;
    study.meanScoreRsdPercent = rsd_acc.mean();
    study.efficiencyIterPerWh = efficiency_acc.mean();
    return study;
}

SocStudy
runSocStudy(const std::string &soc_name, const StudyConfig &cfg)
{
    Fleet fleet = fleetForSoc(soc_name);
    inform("study: %s (%zu units)", soc_name.c_str(), fleet.size());

    ExperimentConfig unc_cfg;
    unc_cfg.mode = WorkloadMode::Unconstrained;
    unc_cfg.iterations = cfg.iterations;
    unc_cfg.accubench = cfg.accubench;
    unc_cfg.thermabox = cfg.thermabox;
    unc_cfg.dt = cfg.dt;
    unc_cfg.supply = SupplyChoice::MonsoonExplicit;
    unc_cfg.monsoonVoltage = studyMonsoonVoltageForSoc(soc_name);

    ExperimentConfig fix_cfg = unc_cfg;
    fix_cfg.mode = WorkloadMode::FixedFrequency;
    fix_cfg.fixedFrequency = fixedFrequencyForSoc(soc_name);

    std::vector<ExperimentResult> unconstrained;
    std::vector<ExperimentResult> fixed_freq;
    std::string model;
    for (auto &device : fleet) {
        model = device->model();
        inform("study:   unit %s unconstrained",
               device->unitId().c_str());
        unconstrained.push_back(runExperiment(*device, unc_cfg));
        inform("study:   unit %s fixed-frequency",
               device->unitId().c_str());
        fixed_freq.push_back(runExperiment(*device, fix_cfg));
    }
    return reduceSocStudy(soc_name, model, unconstrained, fixed_freq);
}

std::vector<SocStudy>
runFullStudy(const StudyConfig &cfg)
{
    std::vector<SocStudy> studies;
    for (const auto &soc : studySocNames())
        studies.push_back(runSocStudy(soc, cfg));
    return studies;
}

} // namespace pvar
