/**
 * @file
 * Minimal JSON emission for experiment and study results.
 *
 * The library deliberately avoids external dependencies, so this is a
 * small hand-rolled writer: a JsonWriter value builder plus canned
 * serializers for the result types downstream tooling wants to
 * ingest (plotting scripts, dashboards, the crowdsourcing backend).
 */

#ifndef PVAR_REPORT_JSON_HH
#define PVAR_REPORT_JSON_HH

#include <string>
#include <vector>

#include "accubench/protocol.hh"
#include "accubench/result.hh"

namespace pvar
{

/**
 * A streaming JSON writer with automatic comma management.
 *
 * Usage:
 *   JsonWriter w;
 *   w.beginObject();
 *   w.key("name").value("SD-800");
 *   w.key("units").beginArray();
 *   w.value(1.0).value(2.0);
 *   w.endArray();
 *   w.endObject();
 *   std::string out = w.str();
 */
class JsonWriter
{
  public:
    JsonWriter();

    JsonWriter &beginObject();
    JsonWriter &endObject();
    JsonWriter &beginArray();
    JsonWriter &endArray();

    /** Emit an object key (must be inside an object). */
    JsonWriter &key(const std::string &k);

    /** @name Scalar values. @{ */
    JsonWriter &value(const std::string &v);
    JsonWriter &value(const char *v);
    JsonWriter &value(double v);
    JsonWriter &value(int v);
    JsonWriter &value(bool v);
    JsonWriter &null();
    /** @} */

    /** The document so far. */
    const std::string &str() const { return _out; }

  private:
    std::string _out;
    // Stack of "needs a comma before the next element" flags.
    std::vector<bool> _needComma;

    void preValue();
    void appendEscaped(const std::string &s);
};

/** Serialize one experiment result (scores, energies, durations). */
std::string toJson(const ExperimentResult &result);

/** Serialize one SoC study (per-unit outcomes + reductions). */
std::string toJson(const SocStudy &study);

/** Serialize a whole multi-SoC study. */
std::string toJson(const std::vector<SocStudy> &studies);

} // namespace pvar

#endif // PVAR_REPORT_JSON_HH
