/**
 * @file
 * Simulation time type.
 *
 * All simulation time is kept as a signed 64-bit count of microseconds.
 * A microsecond tick is fine enough for every process in the model (the
 * fastest dynamics are DVFS governor windows of tens of milliseconds)
 * while leaving headroom for > 290,000 years of simulated time.
 */

#ifndef PVAR_SIM_TIME_HH
#define PVAR_SIM_TIME_HH

#include <compare>
#include <cstdint>
#include <string>

namespace pvar
{

/**
 * A point in (or span of) simulation time with microsecond resolution.
 *
 * Time is used both as an absolute timestamp (microseconds since the
 * start of simulation) and as a duration; the arithmetic operators make
 * the distinction irrelevant in practice, mirroring how kernel code
 * treats jiffies.
 */
class Time
{
  public:
    constexpr Time() : _usec(0) {}

    /** @name Named constructors. @{ */
    static constexpr Time
    usec(std::int64_t n)
    {
        return Time(n);
    }

    static constexpr Time
    msec(std::int64_t n)
    {
        return Time(n * 1000);
    }

    static constexpr Time
    sec(double s)
    {
        return Time(static_cast<std::int64_t>(s * 1e6));
    }

    static constexpr Time
    minutes(double m)
    {
        return Time(static_cast<std::int64_t>(m * 60e6));
    }

    static constexpr Time
    hours(double h)
    {
        return Time(static_cast<std::int64_t>(h * 3600e6));
    }

    static constexpr Time zero() { return Time(0); }

    /** Largest representable time; used as an "infinite" deadline. */
    static constexpr Time
    max()
    {
        return Time(INT64_MAX);
    }
    /** @} */

    /** @name Accessors. @{ */
    constexpr std::int64_t toUsec() const { return _usec; }
    constexpr double toMsec() const { return _usec / 1e3; }
    constexpr double toSec() const { return _usec / 1e6; }
    constexpr double toMinutes() const { return _usec / 60e6; }
    /** @} */

    /** @name Arithmetic. @{ */
    constexpr Time operator+(Time o) const { return Time(_usec + o._usec); }
    constexpr Time operator-(Time o) const { return Time(_usec - o._usec); }

    constexpr Time
    operator*(double k) const
    {
        return Time(static_cast<std::int64_t>(_usec * k));
    }

    constexpr double operator/(Time o) const
    {
        return static_cast<double>(_usec) / static_cast<double>(o._usec);
    }

    Time &
    operator+=(Time o)
    {
        _usec += o._usec;
        return *this;
    }

    Time &
    operator-=(Time o)
    {
        _usec -= o._usec;
        return *this;
    }
    /** @} */

    constexpr auto operator<=>(const Time &) const = default;

    /** Render as a human-readable string, e.g. "3m12.5s". */
    std::string toString() const;

  private:
    explicit constexpr Time(std::int64_t usec) : _usec(usec) {}

    std::int64_t _usec;
};

} // namespace pvar

#endif // PVAR_SIM_TIME_HH
