/**
 * @file
 * Unit tests for the fixed-step co-simulation driver.
 */

#include <gtest/gtest.h>

#include "sim/simulator.hh"

namespace pvar
{
namespace
{

/** Counts ticks and records the last (now, dt) seen. */
class Counter : public Tickable
{
  public:
    int ticks = 0;
    Time lastNow;
    Time lastDt;

    void
    tick(Time now, Time dt) override
    {
        ++ticks;
        lastNow = now;
        lastDt = dt;
    }

    std::string name() const override { return "counter"; }
};

TEST(Simulator, StepAdvancesClock)
{
    Simulator sim(Time::msec(10));
    EXPECT_EQ(sim.now(), Time::zero());
    sim.step();
    EXPECT_EQ(sim.now(), Time::msec(10));
    EXPECT_EQ(sim.stepsExecuted(), 1u);
}

TEST(Simulator, ComponentsTickEveryStep)
{
    Simulator sim(Time::msec(10));
    Counter c;
    sim.add(&c);
    sim.runFor(Time::msec(100));
    EXPECT_EQ(c.ticks, 10);
    EXPECT_EQ(c.lastNow, Time::msec(100));
    EXPECT_EQ(c.lastDt, Time::msec(10));
}

TEST(Simulator, EvaluationOrderIsRegistrationOrder)
{
    Simulator sim(Time::msec(10));
    std::vector<int> order;

    class Probe : public Tickable
    {
      public:
        Probe(std::vector<int> *ord, int label) : _ord(ord), _label(label)
        {
        }
        void tick(Time, Time) override { _ord->push_back(_label); }
        std::string name() const override { return "probe"; }

      private:
        std::vector<int> *_ord;
        int _label;
    };

    Probe a(&order, 1), b(&order, 2), c(&order, 3);
    sim.add(&a);
    sim.add(&b);
    sim.add(&c);
    sim.step();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Simulator, RemoveStopsTicking)
{
    Simulator sim(Time::msec(10));
    Counter c;
    sim.add(&c);
    sim.step();
    sim.remove(&c);
    sim.step();
    EXPECT_EQ(c.ticks, 1);
}

TEST(Simulator, RunUntilExactDeadline)
{
    Simulator sim(Time::msec(10));
    sim.runUntil(Time::msec(55));
    // Steps past the deadline in whole steps: 6 steps -> 60 ms.
    EXPECT_EQ(sim.now(), Time::msec(60));
}

TEST(Simulator, EventsFireDuringRun)
{
    Simulator sim(Time::msec(10));
    int fired = 0;
    sim.events().schedule(Time::msec(35), [&] { ++fired; });
    sim.runFor(Time::msec(30));
    EXPECT_EQ(fired, 0);
    sim.runFor(Time::msec(10));
    EXPECT_EQ(fired, 1);
}

TEST(Simulator, RunUntilCondition)
{
    Simulator sim(Time::msec(10));
    Counter c;
    sim.add(&c);
    bool hit = sim.runUntilCondition([&] { return c.ticks >= 7; },
                                     Time::sec(10));
    EXPECT_TRUE(hit);
    EXPECT_EQ(c.ticks, 7);
}

TEST(Simulator, RunUntilConditionDeadline)
{
    Simulator sim(Time::msec(10));
    bool hit = sim.runUntilCondition([] { return false; }, Time::msec(50));
    EXPECT_FALSE(hit);
    EXPECT_EQ(sim.now(), Time::msec(50));
}

} // namespace
} // namespace pvar
