#include "accubench/lower_bound.hh"

#include <algorithm>

#include "accubench/experiment.hh"
#include "device/fleet.hh"
#include "sim/logging.hh"
#include "sim/strfmt.hh"
#include "stats/summary.hh"

namespace pvar
{

std::vector<LowerBoundPoint>
sampleSizeStudy(const LowerBoundConfig &cfg)
{
    if (cfg.replicates < 1)
        fatal("sampleSizeStudy: need at least one replicate");
    for (int n : cfg.sampleSizes) {
        if (n < 2)
            fatal("sampleSizeStudy: sample sizes must be >= 2");
    }

    ExperimentConfig exp;
    exp.mode = WorkloadMode::Unconstrained;
    exp.iterations = cfg.iterations;
    exp.accubench = cfg.accubench;
    exp.supply = SupplyChoice::MonsoonExplicit;
    exp.monsoonVoltage = studyMonsoonVoltageForSoc(cfg.socName);

    Rng rng(cfg.seed);
    std::vector<LowerBoundPoint> out;

    for (int n : cfg.sampleSizes) {
        OnlineSummary spreads;
        for (int rep = 0; rep < cfg.replicates; ++rep) {
            std::vector<double> scores;
            for (int u = 0; u < n; ++u) {
                UnitCorner corner;
                corner.id = strfmt("lb-n%d-r%d-u%d", n, rep, u);
                corner.corner = rng.gaussian(0.0, cfg.cornerSigma);
                corner.leakResidual = rng.gaussian(0.0, 0.3);
                auto device = makeUnitForSoc(cfg.socName, corner);
                scores.push_back(
                    runExperiment(*device, exp).meanScore());
            }
            spreads.add(relativeSpread(scores) * 100.0);
        }
        LowerBoundPoint p;
        p.sampleSize = n;
        p.meanSpreadPercent = spreads.mean();
        p.minSpreadPercent = spreads.min();
        p.maxSpreadPercent = spreads.max();
        out.push_back(p);
    }
    return out;
}

} // namespace pvar
