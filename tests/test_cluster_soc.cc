/**
 * @file
 * Tests for CPU clusters and SoC power composition.
 */

#include <gtest/gtest.h>

#include "silicon/process_node.hh"
#include "silicon/variation_model.hh"
#include "soc/soc.hh"

namespace pvar
{
namespace
{

VfTable
smallTable()
{
    return VfTable({
        {MegaHertz(300), Volts(0.80)},
        {MegaHertz(960), Volts(0.865)},
        {MegaHertz(1574), Volts(0.965)},
        {MegaHertz(2265), Volts(1.10)},
    });
}

ClusterParams
quadParams()
{
    ClusterParams p;
    p.name = "cpu";
    p.coreType = CoreType{"krait", 1.0, 2.6e9};
    p.coreCount = 4;
    p.table = smallTable();
    return p;
}

Die
typicalDie()
{
    VariationModel m(node28nmHPm());
    return m.dieAtCorner(0, 0, 0, "typ");
}

TEST(Cluster, OppSelectionClamped)
{
    CpuCluster c(quadParams());
    c.setOppIndex(2);
    EXPECT_DOUBLE_EQ(c.frequency().value(), 1574);
    EXPECT_DOUBLE_EQ(c.fusedVoltage().value(), 0.965);
    c.setOppIndex(99);
    EXPECT_DOUBLE_EQ(c.frequency().value(), 2265);
}

TEST(Cluster, VoltageRecoupLowersAppliedVoltage)
{
    CpuCluster c(quadParams());
    c.setOppIndex(3);
    c.setVoltageRecoup(Volts(0.030));
    EXPECT_NEAR(c.appliedVoltage().value(), 1.07, 1e-12);
}

TEST(Cluster, OnlineCoreClamping)
{
    CpuCluster c(quadParams());
    c.setOnlineCores(2);
    EXPECT_EQ(c.onlineCores(), 2);
    c.setOnlineCores(0); // at least one core stays online
    EXPECT_EQ(c.onlineCores(), 1);
    c.setOnlineCores(99);
    EXPECT_EQ(c.onlineCores(), 4);
}

TEST(Cluster, UtilizationClamped)
{
    CpuCluster c(quadParams());
    c.setUtilization(1.7);
    EXPECT_DOUBLE_EQ(c.utilization(), 1.0);
    c.setUtilization(-0.5);
    EXPECT_DOUBLE_EQ(c.utilization(), 0.0);
}

TEST(Cluster, WorkRateMath)
{
    CpuCluster c(quadParams());
    c.setOppIndex(3); // 2265 MHz
    c.setUtilization(1.0);
    // 4 cores * 2.265e9 Hz / 2.6e9 cycles/iter.
    EXPECT_NEAR(c.workRate(), 4.0 * 2.265e9 / 2.6e9, 1e-9);
    c.setOnlineCores(3);
    EXPECT_NEAR(c.workRate(), 3.0 * 2.265e9 / 2.6e9, 1e-9);
    c.setUtilization(0.5);
    EXPECT_NEAR(c.workRate(), 1.5 * 2.265e9 / 2.6e9, 1e-9);
}

TEST(Cluster, PowerIncreasesWithLoadFreqTemp)
{
    CpuCluster c(quadParams());
    Die die = typicalDie();

    c.setOppIndex(1);
    c.setUtilization(0.0);
    double idle = c.power(die, Celsius(40)).value();
    c.setUtilization(1.0);
    double busy = c.power(die, Celsius(40)).value();
    EXPECT_GT(busy, idle * 3.0);

    c.setOppIndex(3);
    double busy_fast = c.power(die, Celsius(40)).value();
    EXPECT_GT(busy_fast, busy);

    double busy_hot = c.power(die, Celsius(90)).value();
    EXPECT_GT(busy_hot, busy_fast);
}

TEST(Cluster, OfflineCoresLeakLittle)
{
    CpuCluster c(quadParams());
    Die die = typicalDie();
    c.setOppIndex(3);
    c.setUtilization(1.0);
    double all4 = c.power(die, Celsius(80)).value();
    c.setOnlineCores(3);
    double just3 = c.power(die, Celsius(80)).value();
    // Dropping one of four busy cores sheds roughly a quarter of
    // the power (the collapsed core retains ~5% leakage).
    EXPECT_LT(just3, all4 * 0.80);
    EXPECT_GT(just3, all4 * 0.70);
}

TEST(Soc, PowerSumsClustersPlusUncore)
{
    SocParams sp;
    sp.name = "test";
    sp.clusters = {quadParams()};
    sp.uncoreActive = Watts(0.25);
    Soc soc(sp, typicalDie());

    soc.cluster(0).setUtilization(1.0);
    soc.cluster(0).setOppIndex(3);
    double total = soc.power(Celsius(40), false).value();
    double cluster_only =
        soc.cluster(0).power(soc.die(), Celsius(40)).value();
    EXPECT_NEAR(total, cluster_only + 0.25, 1e-9);
}

TEST(Soc, SuspendedPowerIsTiny)
{
    SocParams sp;
    sp.clusters = {quadParams()};
    Soc soc(sp, typicalDie());
    soc.cluster(0).setUtilization(1.0);
    soc.toHighestOpp();

    double active = soc.power(Celsius(40), false).value();
    double suspended = soc.power(Celsius(40), true).value();
    EXPECT_LT(suspended, active / 50.0);
    EXPECT_GT(suspended, 0.0);
}

TEST(Soc, BigLittleComposition)
{
    ClusterParams big = quadParams();
    big.name = "big";
    ClusterParams little = quadParams();
    little.name = "little";
    little.coreType = CoreType{"a53", 0.4, 4.2e9};
    little.table = VfTable({{MegaHertz(384), Volts(0.70)},
                            {MegaHertz(1555), Volts(0.90)}});

    SocParams sp;
    sp.clusters = {big, little};
    Soc soc(sp, typicalDie());
    EXPECT_EQ(soc.clusterCount(), 2u);
    EXPECT_EQ(soc.totalCores(), 8);

    soc.toHighestOpp();
    for (auto &c : soc.clusters())
        c.setUtilization(1.0);
    // Work rate includes both clusters.
    double expected = 4.0 * 2.265e9 / 2.6e9 + 4.0 * 1.555e9 / 4.2e9;
    EXPECT_NEAR(soc.workRate(), expected, 1e-9);
}

TEST(Soc, ToLowestAndHighestOpp)
{
    SocParams sp;
    sp.clusters = {quadParams()};
    Soc soc(sp, typicalDie());
    soc.toHighestOpp();
    EXPECT_DOUBLE_EQ(soc.cluster(0).frequency().value(), 2265);
    soc.toLowestOpp();
    EXPECT_DOUBLE_EQ(soc.cluster(0).frequency().value(), 300);
}

TEST(Soc, InvalidConfigDies)
{
    SocParams sp; // no clusters
    EXPECT_DEATH(Soc(sp, typicalDie()), "");
}

} // namespace
} // namespace pvar
