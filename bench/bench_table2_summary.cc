/**
 * @file
 * Regenerates paper Table II: the summary of energy-performance
 * variations across all five SoC generations, by running the complete
 * study protocol (both workloads, 5 iterations, every unit of every
 * fleet) inside the simulated THERMABOX.
 */

#include <cstdio>

#include "accubench/protocol.hh"
#include "bench_util.hh"
#include "report/figure.hh"
#include "report/table.hh"

using namespace pvar;

namespace
{

struct PaperRow
{
    const char *soc;
    const char *model;
    int devices;
    double perf;
    double energy;
};

const PaperRow paperRows[] = {
    {"SD-800", "Nexus 5", 4, 14.0, 19.0},
    {"SD-805", "Nexus 6", 3, 2.0, 2.0},
    {"SD-810", "Nexus 6P", 3, 10.0, 12.0},
    {"SD-820", "LG G5", 5, 4.0, 10.0},
    {"SD-821", "Google Pixel", 3, 5.0, 9.0},
};

} // namespace

int
main()
{
    benchQuiet();
    std::printf("%s", figureHeader(
        "Table II: Summary of energy-performance variations",
        "SD-800 14/19, SD-805 2/2, SD-810 10/12, SD-820 4/10, "
        "SD-821 5/9 (%perf/%energy)").c_str());

    StudyConfig cfg;
    cfg.iterations = 5;
    std::vector<SocStudy> studies = runFullStudy(cfg);

    Table t({"Chipset", "Model", "# Devices", "Perf (sim)",
             "Perf (paper)", "Energy (sim)", "Energy (paper)",
             "Mean score RSD"});
    bool all_in_band = true;
    for (std::size_t i = 0; i < studies.size(); ++i) {
        const SocStudy &s = studies[i];
        const PaperRow &p = paperRows[i];
        t.addRow({s.socName, s.model, std::to_string(s.units.size()),
                  fmtPercent(s.perfVariationPercent),
                  fmtPercent(p.perf, 0),
                  fmtPercent(s.energyVariationPercent),
                  fmtPercent(p.energy, 0),
                  fmtPercent(s.meanScoreRsdPercent, 2)});
        if (std::abs(s.perfVariationPercent - p.perf) > 6.0 ||
            std::abs(s.energyVariationPercent - p.energy) > 7.0)
            all_in_band = false;
    }
    std::printf("%s", t.render().c_str());

    std::printf("\nSHAPE CHECK vs paper:\n");
    shapeCheck(all_in_band,
               "every SoC's perf/energy variation lands within a few "
               "points of Table II");
    shapeCheck(studies[0].perfVariationPercent >
                       studies[1].perfVariationPercent &&
                   studies[0].energyVariationPercent >
                       studies[1].energyVariationPercent,
               "the SD-800 varies far more than the SD-805");
    shapeCheck(studies[2].perfVariationPercent >
                   studies[3].perfVariationPercent,
               "the 20 nm SD-810 varies more than the 14 nm SD-820");
    double total_units = 0;
    for (const auto &s : studies)
        total_units += static_cast<double>(s.units.size());
    shapeCheck(total_units == 18,
               "the study covers the paper's 18 units");
    return 0;
}
