/**
 * @file
 * pvar_storectl: inspect and maintain a durable experiment store.
 *
 *   pvar_storectl <command> --cache-dir DIR [options]
 *
 *   commands:
 *     stats             print store counters as JSON
 *     verify            re-read every record through the checksummed
 *                       log and the codec; exit 1 if any record is
 *                       superseded garbage or fails to decode, exit 2
 *                       if the store is marked degraded or records
 *                       were dropped (torn tail truncated at open)
 *     compact           rewrite the log dropping superseded and
 *                       orphaned records (atomic rename)
 *     export --json     dump every live record as a JSON array of
 *                       {"key": ..., "result": ...} objects
 *
 * The store directory is the one pvar_study/pvar_served write with
 * their --cache-dir flag. All commands open the log through the same
 * recovery path the services use, so a torn tail is truncated (and
 * reported) here too.
 */

#include <cstdio>
#include <cstring>
#include <string>

#include <sys/stat.h>

#include "report/json.hh"
#include "sim/logging.hh"
#include "sim/strfmt.hh"
#include "store/store.hh"

using namespace pvar;

namespace
{

void
usage()
{
    std::printf(
        "pvar_storectl: inspect a durable experiment store\n"
        "\n"
        "  pvar_storectl <command> --cache-dir DIR [options]\n"
        "\n"
        "commands:\n"
        "  stats             print store counters as JSON\n"
        "  verify            check every record end-to-end; exit 1 on\n"
        "                    any undecodable record, exit 2 when the\n"
        "                    store is marked degraded or lost records\n"
        "  compact           drop superseded/orphaned records\n"
        "  export --json     dump live records as a JSON array\n"
        "\n"
        "options:\n"
        "  --cache-dir DIR   store directory (required)\n"
        "  --quiet           suppress progress logging\n"
        "  --help            this text\n");
}

/** Emit the machine-readable stats document. */
void
printStats(const ExperimentStoreStats &s, std::uint64_t dropped,
           bool with_dropped)
{
    JsonWriter w;
    w.beginObject();
    w.key("records").value(static_cast<long long>(s.records));
    w.key("log_records").value(static_cast<long long>(s.logRecords));
    w.key("bytes").value(static_cast<long long>(s.bytes));
    w.key("live_point_records")
        .value(static_cast<long long>(s.livePointRecords));
    w.key("live_point_bytes")
        .value(static_cast<long long>(s.livePointBytes));
    w.key("truncated_bytes")
        .value(static_cast<long long>(s.truncatedBytes));
    w.key("failed_appends")
        .value(static_cast<long long>(s.failedAppends));
    w.key("failed_syncs")
        .value(static_cast<long long>(s.failedSyncs));
    w.key("degraded_marker").value(s.degradedMarker);
    if (with_dropped)
        w.key("dropped").value(static_cast<long long>(dropped));
    w.endObject();
    std::printf("%s\n", w.str().c_str());
}

} // namespace

int
main(int argc, char **argv)
{
    std::string command;
    std::string dir;
    bool as_json = false;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto next = [&]() -> const char * {
            if (i + 1 >= argc)
                fatal("pvar_storectl: %s needs a value", arg.c_str());
            return argv[++i];
        };
        if (arg == "--cache-dir") {
            dir = next();
        } else if (arg == "--json") {
            as_json = true;
        } else if (arg == "--quiet") {
            setLogLevel(LogLevel::Quiet);
        } else if (arg == "--help" || arg == "-h") {
            usage();
            return 0;
        } else if (!arg.empty() && arg[0] == '-') {
            std::fprintf(stderr, "unknown option '%s'\n", arg.c_str());
            usage();
            return 1;
        } else if (command.empty()) {
            command = arg;
        } else {
            std::fprintf(stderr, "unexpected argument '%s'\n",
                         arg.c_str());
            usage();
            return 1;
        }
    }

    if (command.empty()) {
        usage();
        return 1;
    }
    if (command != "stats" && command != "verify" &&
        command != "compact" && command != "export") {
        fatal("pvar_storectl: unknown command '%s'", command.c_str());
    }
    if (dir.empty())
        fatal("pvar_storectl: %s requires --cache-dir", command.c_str());

    // Inspection must not invent a store where none exists.
    struct stat st{};
    std::string log_path = dir + "/experiments.log";
    if (::stat(log_path.c_str(), &st) != 0) {
        fatal("pvar_storectl: no store at '%s' (%s missing)",
              dir.c_str(), log_path.c_str());
    }

    ExperimentStore store(dir);

    if (command == "stats") {
        printStats(store.stats(), 0, false);
        return 0;
    }

    if (command == "verify") {
        std::uint64_t good = 0, bad = 0, live_points = 0;
        store.forEach(
            [&](const std::string &, const ExperimentResult &) {
                ++good;
            },
            &bad, &live_points);
        ExperimentStoreStats s = store.stats();
        std::printf("verify: %llu records ok, %llu live points ok, "
                    "%llu undecodable, %llu superseded, "
                    "%llu torn bytes truncated%s\n",
                    static_cast<unsigned long long>(good),
                    static_cast<unsigned long long>(live_points),
                    static_cast<unsigned long long>(bad),
                    static_cast<unsigned long long>(
                        s.logRecords - good - bad - live_points),
                    static_cast<unsigned long long>(s.truncatedBytes),
                    s.degradedMarker ? ", DEGRADED marker present"
                                     : "");
        if (bad != 0)
            return 1;
        // Distinct exit code for silent data loss: every surviving
        // record is fine, but a writer lost appends (marker) or the
        // log lost its tail (truncation). A clean rerun that writes
        // through the store clears the marker.
        if (s.degradedMarker || s.truncatedBytes > 0)
            return 2;
        return 0;
    }

    if (command == "compact") {
        std::uint64_t before = store.stats().bytes;
        std::uint64_t dropped = store.compact();
        ExperimentStoreStats s = store.stats();
        inform("compact: dropped %llu records, %llu -> %llu bytes",
               static_cast<unsigned long long>(dropped),
               static_cast<unsigned long long>(before),
               static_cast<unsigned long long>(s.bytes));
        printStats(s, dropped, true);
        return 0;
    }

    // export
    if (!as_json)
        fatal("pvar_storectl: export requires --json");
    std::string out = "[";
    bool first = true;
    store.forEach([&](const std::string &key,
                      const ExperimentResult &result) {
        if (!first)
            out += ",";
        first = false;
        // The key is already canonical JSON; the result serializer is
        // the same one the study reports use.
        out += "\n  {\"key\": " + key +
               ", \"result\": " + toJson(result) + "}";
    });
    out += first ? "]\n" : "\n]\n";
    std::printf("%s", out.c_str());
    return 0;
}
