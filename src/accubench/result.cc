#include "accubench/result.hh"

namespace pvar
{

const char *
experimentStatusName(ExperimentStatus status)
{
    switch (status) {
      case ExperimentStatus::Ok:
        return "ok";
      case ExperimentStatus::InvalidRun:
        return "invalid-run";
      case ExperimentStatus::TransientFault:
        return "transient-fault";
      case ExperimentStatus::PermanentFault:
        return "permanent-fault";
    }
    return "unknown";
}

OnlineSummary
ExperimentResult::scoreSummary() const
{
    OnlineSummary s;
    for (const auto &it : iterations)
        s.add(it.score);
    return s;
}

OnlineSummary
ExperimentResult::workloadEnergySummary() const
{
    OnlineSummary s;
    for (const auto &it : iterations)
        s.add(it.workloadEnergy.value());
    return s;
}

} // namespace pvar
