/**
 * @file
 * Phase-aware energy accounting.
 *
 * ACCUBENCH needs per-phase energy (warmup vs cooldown vs workload);
 * EnergyMeter integrates power over time and lets callers mark phase
 * boundaries, retrieving the energy of each named span afterwards.
 */

#ifndef PVAR_POWER_ENERGY_METER_HH
#define PVAR_POWER_ENERGY_METER_HH

#include <string>
#include <vector>

#include "sim/bytes.hh"
#include "sim/time.hh"
#include "sim/units.hh"

namespace pvar
{

/** One closed accounting span. */
struct EnergySpan
{
    std::string label;
    Time start;
    Time end;
    Joules energy;
};

/**
 * Accumulates energy and slices it into labeled spans.
 */
class EnergyMeter
{
  public:
    EnergyMeter();

    /** Integrate `p` over `dt` ending at `now`. */
    void accumulate(Watts p, Time now, Time dt);

    /** Total energy since construction (or reset). */
    Joules total() const { return _total; }

    /**
     * Open a new labeled span at `now`, closing any open span first.
     */
    void beginSpan(const std::string &label, Time now);

    /** Close the open span at `now`; no-op when none is open. */
    void endSpan(Time now);

    /** All closed spans, oldest first. */
    const std::vector<EnergySpan> &spans() const { return _spans; }

    /**
     * Sum of the energies of all closed spans with the given label.
     */
    Joules energyOf(const std::string &label) const;

    /** Forget everything. */
    void reset();

    /** @name Live-point state (totals, spans, open span). @{ */
    void
    saveState(ByteWriter &w) const
    {
        w.f64(_total.value());
        w.u32(static_cast<std::uint32_t>(_spans.size()));
        for (const EnergySpan &s : _spans) {
            w.str(s.label);
            w.i64(s.start.toUsec());
            w.i64(s.end.toUsec());
            w.f64(s.energy.value());
        }
        w.u8(_open ? 1 : 0);
        w.str(_openLabel);
        w.i64(_openStart.toUsec());
        w.f64(_openStartEnergy.value());
    }

    bool
    loadState(ByteReader &r)
    {
        double total = 0.0, open_start_j = 0.0;
        std::uint32_t n_spans = 0;
        std::uint8_t open = 0;
        std::int64_t open_start = 0;
        if (!r.f64(total) || !r.u32(n_spans) ||
            n_spans > 1024u * 1024u)
            return false;
        std::vector<EnergySpan> spans;
        spans.reserve(n_spans);
        for (std::uint32_t i = 0; i < n_spans; ++i) {
            EnergySpan s;
            std::int64_t start = 0, end = 0;
            double energy = 0.0;
            if (!r.str(s.label) || !r.i64(start) || !r.i64(end) ||
                !r.f64(energy))
                return false;
            s.start = Time::usec(start);
            s.end = Time::usec(end);
            s.energy = Joules(energy);
            spans.push_back(std::move(s));
        }
        std::string open_label;
        if (!r.u8(open) || open > 1 || !r.str(open_label) ||
            !r.i64(open_start) || !r.f64(open_start_j))
            return false;
        _total = Joules(total);
        _spans = std::move(spans);
        _open = open != 0;
        _openLabel = std::move(open_label);
        _openStart = Time::usec(open_start);
        _openStartEnergy = Joules(open_start_j);
        return true;
    }
    /** @} */

  private:
    Joules _total;
    std::vector<EnergySpan> _spans;
    bool _open;
    std::string _openLabel;
    Time _openStart;
    Joules _openStartEnergy;
};

} // namespace pvar

#endif // PVAR_POWER_ENERGY_METER_HH
