
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/soc/cluster.cc" "src/CMakeFiles/pvar_soc.dir/soc/cluster.cc.o" "gcc" "src/CMakeFiles/pvar_soc.dir/soc/cluster.cc.o.d"
  "/root/repo/src/soc/cpufreq.cc" "src/CMakeFiles/pvar_soc.dir/soc/cpufreq.cc.o" "gcc" "src/CMakeFiles/pvar_soc.dir/soc/cpufreq.cc.o.d"
  "/root/repo/src/soc/input_voltage_throttle.cc" "src/CMakeFiles/pvar_soc.dir/soc/input_voltage_throttle.cc.o" "gcc" "src/CMakeFiles/pvar_soc.dir/soc/input_voltage_throttle.cc.o.d"
  "/root/repo/src/soc/rbcpr.cc" "src/CMakeFiles/pvar_soc.dir/soc/rbcpr.cc.o" "gcc" "src/CMakeFiles/pvar_soc.dir/soc/rbcpr.cc.o.d"
  "/root/repo/src/soc/soc.cc" "src/CMakeFiles/pvar_soc.dir/soc/soc.cc.o" "gcc" "src/CMakeFiles/pvar_soc.dir/soc/soc.cc.o.d"
  "/root/repo/src/soc/thermal_governor.cc" "src/CMakeFiles/pvar_soc.dir/soc/thermal_governor.cc.o" "gcc" "src/CMakeFiles/pvar_soc.dir/soc/thermal_governor.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/pvar_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pvar_silicon.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pvar_power.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
