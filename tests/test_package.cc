/**
 * @file
 * Tests for the smartphone thermal package.
 */

#include <gtest/gtest.h>

#include "thermal/package.hh"

namespace pvar
{
namespace
{

PhonePackage
makePackage()
{
    return PhonePackage(PackageParams{}, Celsius(26.0));
}

TEST(PhonePackage, StartsAtAmbient)
{
    PhonePackage p = makePackage();
    EXPECT_DOUBLE_EQ(p.dieTemp().value(), 26.0);
    EXPECT_DOUBLE_EQ(p.caseTemp().value(), 26.0);
    EXPECT_DOUBLE_EQ(p.batteryTemp().value(), 26.0);
    EXPECT_DOUBLE_EQ(p.ambientTemp().value(), 26.0);
}

TEST(PhonePackage, CpuPowerHeatsDieFirst)
{
    PhonePackage p = makePackage();
    p.setCpuPower(Watts(4.0));
    p.step(Time::sec(5));
    EXPECT_GT(p.dieTemp(), p.socTemp());
    EXPECT_GT(p.socTemp(), p.caseTemp());
    EXPECT_GE(p.caseTemp().value(), 26.0);
}

TEST(PhonePackage, TemperatureGradientAtSteadyState)
{
    PhonePackage p = makePackage();
    p.setCpuPower(Watts(3.0));
    p.network().solveSteadyState();
    // Heat flows die -> soc -> case -> ambient: strictly decreasing.
    EXPECT_GT(p.dieTemp(), p.socTemp());
    EXPECT_GT(p.socTemp(), p.caseTemp());
    EXPECT_GT(p.caseTemp(), p.ambientTemp());
    // The battery sits between board and case temperatures.
    EXPECT_GT(p.batteryTemp(), p.ambientTemp());
    EXPECT_LT(p.batteryTemp(), p.socTemp());
}

TEST(PhonePackage, SteadyCaseRiseMatchesConductance)
{
    // All dissipated power exits through case->ambient:
    // T_case - T_amb = P / G_case_amb.
    PackageParams params;
    PhonePackage p(params, Celsius(26.0));
    p.setCpuPower(Watts(2.0));
    p.setBoardPower(Watts(0.5));
    p.network().solveSteadyState();
    double expected = 26.0 + 2.5 / params.caseToAmbient;
    EXPECT_NEAR(p.caseTemp().value(), expected, 1e-3);
    EXPECT_NEAR(p.heatToAmbient().value(), 2.5, 1e-3);
}

TEST(PhonePackage, SoakResetsMassesOnly)
{
    PhonePackage p = makePackage();
    p.setCpuPower(Watts(5.0));
    p.step(Time::sec(30));
    p.soakTo(Celsius(30.0));
    EXPECT_DOUBLE_EQ(p.dieTemp().value(), 30.0);
    EXPECT_DOUBLE_EQ(p.caseTemp().value(), 30.0);
    EXPECT_DOUBLE_EQ(p.ambientTemp().value(), 26.0);
}

TEST(PhonePackage, AmbientStepPropagates)
{
    PhonePackage p = makePackage();
    p.setAmbient(Celsius(40.0));
    for (int i = 0; i < 40000; ++i)
        p.step(Time::msec(100));
    EXPECT_NEAR(p.dieTemp().value(), 40.0, 0.1);
    EXPECT_NEAR(p.caseTemp().value(), 40.0, 0.1);
}

TEST(PhonePackage, HigherAmbientMeansHotterDieUnderLoad)
{
    PhonePackage cool(PackageParams{}, Celsius(10.0));
    PhonePackage hot(PackageParams{}, Celsius(40.0));
    cool.setCpuPower(Watts(4.0));
    hot.setCpuPower(Watts(4.0));
    cool.network().solveSteadyState();
    hot.network().solveSteadyState();
    EXPECT_NEAR(hot.dieTemp().value() - cool.dieTemp().value(), 30.0,
                0.1);
}

TEST(PhonePackage, DieRespondsInSecondsCaseInMinutes)
{
    // The paper: top-frequency heat reaches limits "within seconds".
    // The die must move quickly while the case barely changes.
    PhonePackage p = makePackage();
    p.setCpuPower(Watts(6.0));
    p.step(Time::sec(10));
    EXPECT_GT(p.dieTemp().value(), 32.0);
    EXPECT_LT(p.caseTemp().value(), 27.5);
}

} // namespace
} // namespace pvar
