# Empty dependencies file for pvar_stats.
# This may be replaced when dependencies are built.
