/**
 * @file
 * Bit-exact binary serialization of ExperimentResult.
 *
 * The store's value format. Binary rather than JSON because the
 * durability contract is *bit-identical* round-trips: every double is
 * stored as its raw IEEE-754 bit pattern (so -0.0, denormals, and
 * values that no decimal rendering reproduces survive), every Time as
 * its raw microsecond count. Encoding the decode of an encode yields
 * the same bytes, which the fault-injection tests lean on.
 *
 * Layout (little-endian; str := u32 length + bytes; f64 := IEEE-754
 * bits as u64; see DESIGN.md §2.4):
 *
 *   value   := version u32 (=1)
 *              unitId str | model str | socName str
 *              n_iterations u32 | iteration*
 *              n_channels u32 | channel*
 *   iteration := score f64 | workload_energy_j f64
 *              | total_energy_j f64 | warmup_us i64 | cooldown_us i64
 *              | workload_us i64 | temp_at_start_c f64
 *              | peak_temp_c f64 | cooldown_reached u8
 *   channel := name str | n_samples u64 | (when_us i64, value f64)*
 *
 * Decoding is total: any truncated, oversized, or structurally wrong
 * input returns false instead of throwing or crashing, so on-disk
 * corruption degrades to a cache miss.
 */

#ifndef PVAR_STORE_CODEC_HH
#define PVAR_STORE_CODEC_HH

#include <string>

#include "accubench/result.hh"

namespace pvar
{

/** Serialize @p result into the store's binary value format. */
std::string encodeExperimentResult(const ExperimentResult &result);

/**
 * Parse a binary value back into @p out. Returns false (leaving @p out
 * unspecified) on any malformed input; never throws.
 */
bool decodeExperimentResult(const std::string &bytes,
                            ExperimentResult &out);

/**
 * Live-point records (codec v3) share the log with results but hold
 * opaque simulator state, not an ExperimentResult. The value is
 * self-describing so the store can validate and retain records whose
 * payload semantics it does not know:
 *
 *   livepoint := version u32 (=3)
 *                digest u64 (FNV-1a of every byte after this field)
 *                n_sections u32
 *                section*
 *   section   := tag u32 | payload str (u32 length + bytes)
 *
 * The digest makes the record self-checking: a single flipped bit
 * anywhere in the body fails validation even when the transport has
 * no checksum of its own (the record log's CRC is a second,
 * independent layer). Section tags and payload layouts belong to the
 * accubench layer (batch.cc); see DESIGN.md §2.8.
 */
constexpr std::uint32_t kLivePointVersion = 3;

/** Framing sanity cap for live-point section counts. */
constexpr std::uint32_t kMaxLivePointSections = 64;

/** True when @p bytes carries the live-point version tag. */
bool valueIsLivePoint(const std::string &bytes);

/**
 * Structural validation of a live-point value: version tag, section
 * framing, and no trailing bytes. Does not interpret payloads.
 */
bool validateLivePointValue(const std::string &bytes);

} // namespace pvar

#endif // PVAR_STORE_CODEC_HH
