/**
 * @file
 * Crash-safe append-only record log.
 *
 * The durability primitive under the experiment store: a single flat
 * file of length-prefixed, CRC32-checksummed (key, value) records.
 * Appends only ever grow the file, so the only failure mode a crash
 * (or a torn write) can produce is an invalid *tail*; open() scans the
 * file, keeps the longest prefix of valid records, and truncates the
 * rest. A record that survives recovery round-trips bit-identically —
 * the CRC covers every payload byte — and a record that does not
 * simply vanishes, which callers treat as "recompute".
 *
 * Byte-level format (all integers little-endian; see DESIGN.md §2.4):
 *
 *   file    := magic record*
 *   magic   := "PVARLOG1"                      (8 bytes)
 *   record  := length u32 | crc32 u32 | payload
 *   payload := key_len u32 | key bytes | value_len u32 | value bytes
 *
 * `length` is the payload byte count and `crc32` is the IEEE CRC-32 of
 * the payload. Durability is batched: every syncEvery-th append (and
 * every explicit sync()) issues an fsync, so at most a bounded suffix
 * of recent appends is exposed to power loss; a SIGKILL alone loses
 * nothing that reached the page cache.
 */

#ifndef PVAR_STORE_RECORD_LOG_HH
#define PVAR_STORE_RECORD_LOG_HH

#include <cstdint>
#include <functional>
#include <string>

namespace pvar
{

/** IEEE 802.3 CRC-32 (the zlib/PNG polynomial) of @p size bytes. */
std::uint32_t crc32(const void *data, std::size_t size);

/** Counters describing one opened log. */
struct RecordLogStats
{
    std::uint64_t records = 0;        ///< valid records in the file
    std::uint64_t bytes = 0;          ///< current file size
    std::uint64_t truncatedBytes = 0; ///< torn tail dropped at open()
    std::uint64_t appends = 0;        ///< records appended this session
    std::uint64_t syncs = 0;          ///< fsyncs issued this session
    std::uint64_t failedAppends = 0;  ///< write() failures this session
    std::uint64_t failedSyncs = 0;    ///< fsync() failures this session
};

/**
 * One open record log file. Not thread-safe by itself — the owning
 * ExperimentStore serializes access.
 */
class RecordLog
{
  public:
    /**
     * Open (creating if absent) the log at @p path, recovering from
     * any torn tail. @p sync_every batches fsyncs: 1 syncs every
     * append, N syncs every Nth, 0 leaves durability to the OS.
     * Fatal when the file cannot be created or opened.
     */
    explicit RecordLog(std::string path, int sync_every = 8);
    ~RecordLog();

    RecordLog(const RecordLog &) = delete;
    RecordLog &operator=(const RecordLog &) = delete;

    /**
     * Append one record; returns its file offset (of the length
     * prefix). Returns -1 and warns on I/O failure — the caller
     * degrades to compute-only operation.
     */
    std::int64_t append(const std::string &key,
                        const std::string &value);

    /**
     * Read the record at @p offset (as returned by append() or
     * scan()). Returns false — never throws, never crashes — on any
     * structural or checksum failure.
     */
    bool readAt(std::int64_t offset, std::string &key,
                std::string &value) const;

    /**
     * Visit every valid record in file order. Stops at the first
     * invalid record (by construction only a recovered-then-appended
     * file has none). The callback gets the record's offset.
     */
    void scan(const std::function<void(std::int64_t offset,
                                       const std::string &key,
                                       const std::string &value)> &fn)
        const;

    /**
     * Flush batched appends to disk now (fsync). A failed fsync is a
     * *missed durability point*, not a success: it is counted, the log
     * is marked degraded, and the unsynced window stays open so a
     * later sync can retry.
     */
    void sync();

    /**
     * True once any append or fsync has failed this session: data may
     * have been lost, so owners should stop trusting the log for new
     * writes (the ExperimentStore downgrades to memory-only).
     */
    bool degraded() const { return _degraded; }

    RecordLogStats stats() const { return _stats; }
    const std::string &path() const { return _path; }

    /** Payload bytes one record with these sizes occupies on disk. */
    static std::size_t recordBytes(std::size_t key_size,
                                   std::size_t value_size);

  private:
    std::string _path;
    int _fd = -1;
    int _syncEvery;
    int _unsynced = 0;
    std::int64_t _end = 0; ///< append position (file size)
    bool _degraded = false;
    RecordLogStats _stats;

    void recover();
};

} // namespace pvar

#endif // PVAR_STORE_RECORD_LOG_HH
