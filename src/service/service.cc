#include "service/service.hh"

#include <algorithm>

#include "device/registry.hh"
#include "fault/fault.hh"
#include "report/json.hh"
#include "report/spec_json.hh"
#include "sampling/sampler.hh"
#include "sim/logging.hh"
#include "sim/strfmt.hh"

namespace pvar
{

namespace
{

HttpResponse
errorResponse(int status, const std::string &message)
{
    JsonWriter w;
    w.beginObject();
    w.key("error").value(message);
    w.endObject();
    HttpResponse resp;
    resp.status = status;
    resp.body = w.str() + "\n";
    return resp;
}

HttpResponse
methodNotAllowed(const std::string &allowed)
{
    HttpResponse resp = errorResponse(405, "method not allowed");
    resp.headers.emplace_back("Allow", allowed);
    return resp;
}

/** Integer request field >= @p min, or the default; throws JsonError. */
int
intField(const JsonValue &doc, const char *key, int dflt, int min)
{
    const JsonValue *v = doc.find(key);
    if (!v)
        return dflt;
    double d = v->asNumber();
    int i = static_cast<int>(d);
    if (static_cast<double>(i) != d || i < min) {
        throw JsonError(strfmt("'%s' must be an integer >= %d", key,
                               min));
    }
    return i;
}

} // namespace

StudyService::StudyService(ServiceConfig cfg) : _cfg(std::move(cfg))
{
    if (!_cfg.cacheDir.empty()) {
        // Durable mode: the LRU fronts an on-disk record log, so a
        // restart rebuilds the cache instead of cold-starting it.
        std::size_t lru =
            _cfg.cacheEntries > 0 ? _cfg.cacheEntries : 1;
        _durable = std::make_unique<DurableCache>(
            _cfg.cacheDir, lru, _cfg.storeSyncEvery);
    } else if (_cfg.cacheEntries > 0) {
        _cache = std::make_unique<ResultCache>(_cfg.cacheEntries);
    }
    if (_cfg.workers < 1)
        _cfg.workers = 1;
}

ExperimentCache *
StudyService::activeCache()
{
    if (_durable)
        return _durable.get();
    return _cache.get();
}

StudyService::~StudyService()
{
    stop();
}

void
StudyService::start()
{
    HttpLoopConfig lc;
    lc.host = _cfg.host;
    lc.port = _cfg.port;
    lc.limits = _cfg.limits;
    lc.maxConns = _cfg.maxConns;
    lc.idleTimeoutMs = _cfg.idleTimeoutMs;
    lc.backend = _cfg.backend;

    _loop = std::make_unique<HttpServerLoop>(
        lc,
        [this](const HttpRequest &req, const std::string &client,
               HttpServerLoop::Token token, HttpResponse &out) {
            return onRequest(req, client, token, out);
        },
        [this](int status, const std::string &msg) {
            // Transport-level failure (malformed request, overload
            // shed): no handler ran, but a response still goes out.
            if (status == 400 || status == 413 || status == 431)
                ++_badRequests;
            ++_served;
            inform("request method=- path=- status=%d ms=0.0", status);
            return errorResponse(status, msg);
        },
        [this]() {
            if (faultCheck(FaultSite::HttpAccept).fired) {
                // Injected listener failure: the connection is
                // dropped before any bytes are read, as if the kernel
                // reset it. Clients see ECONNRESET and retry; studies
                // in flight are untouched.
                ++_rejected;
                warn("pvar_served: injected accept fault; connection "
                     "dropped");
                return false;
            }
            return true;
        });

    for (int i = 0; i < _cfg.workers; ++i)
        _workers.emplace_back([this, i] { workerLoop(i); });
    _loop->start();
    _port = _loop->port();

    inform("pvar_served: listening on %s:%d (%s loop, %d workers, "
           "queue %zu, cache %zu)",
           _cfg.host.c_str(), _port, pollerBackendName(_cfg.backend),
           _cfg.workers, _cfg.queueDepth, _cfg.cacheEntries);
}

void
StudyService::stop()
{
    {
        std::lock_guard<std::mutex> lock(_mutex);
        if (_stopping)
            return;
        _stopping = true;
        _paused = false;
    }
    _wake.notify_all();
    // Order matters: the loop stops accepting first, workers then
    // drain the queue (their completions flow back to the loop, which
    // flushes them before its own thread exits).
    if (_loop)
        _loop->requestStop();
    for (std::thread &w : _workers) {
        if (w.joinable())
            w.join();
    }
    _workers.clear();
    if (_loop)
        _loop->join();
    inform("pvar_served: drained (%llu served, %llu rejected)",
           static_cast<unsigned long long>(_served.load()),
           static_cast<unsigned long long>(_rejected.load()));
}

int
StudyService::retryAfterSeconds() const
{
    std::size_t queued;
    {
        std::lock_guard<std::mutex> lock(_mutex);
        queued = _queue.size();
    }
    std::size_t workers = static_cast<std::size_t>(
        std::max(_cfg.workers, 1));
    std::size_t factor =
        std::max<std::size_t>(1, (queued + workers - 1) / workers);
    long secs = static_cast<long>(_cfg.retryAfterSec) *
                static_cast<long>(factor);
    return static_cast<int>(std::clamp<long>(secs, 1, 60));
}

bool
StudyService::onRequest(const HttpRequest &req,
                        const std::string &client,
                        HttpServerLoop::Token token, HttpResponse &out)
{
    auto start = std::chrono::steady_clock::now();

    // The heavy endpoints share the bounded study queue: a crowd
    // study is a fleet-sized batch of experiments, so it gets the
    // same backpressure as /study instead of blocking the loop.
    if (req.method == "POST" &&
        (req.path == "/study" || req.path == "/crowd")) {
        int reject_status = 0;
        std::string reject_msg;
        {
            std::lock_guard<std::mutex> lock(_mutex);
            if (_stopping) {
                reject_status = 503;
                reject_msg = "service shutting down";
            } else if (_queue.size() >= _cfg.queueDepth) {
                reject_status = 429;
                reject_msg = "study queue full; retry later";
            } else {
                // Fair admission: with K client addresses holding
                // queued studies, none may hold more than
                // queueDepth / K slots. A lone client still gets the
                // whole queue; a greedy one among many gets 429 while
                // the others' share stays admittable.
                auto mine = _pendingByClient.find(client);
                std::size_t held =
                    mine == _pendingByClient.end() ? 0 : mine->second;
                std::size_t competitors =
                    _pendingByClient.size() + (held == 0 ? 1 : 0);
                std::size_t share = std::max<std::size_t>(
                    1, _cfg.queueDepth / competitors);
                if (held >= share) {
                    reject_status = 429;
                    reject_msg =
                        "client over fair queue share; retry later";
                } else {
                    _queue.push_back(Job{token, req.body, req.method,
                                         req.path, client, start});
                    ++_pendingByClient[client];
                    _wake.notify_one();
                    return false; // a worker completes it later
                }
            }
        }
        out = errorResponse(reject_status, reject_msg);
        out.headers.emplace_back("Retry-After",
                                 strfmt("%d", retryAfterSeconds()));
        finalize(req.method, req.path, out, start);
        return true;
    }

    out = handle(req);
    finalize(req.method, req.path, out, start);
    return true;
}

void
StudyService::workerLoop(int worker_id)
{
    setLogThreadTag(strfmt("svc%d", worker_id));
    while (true) {
        Job job;
        {
            std::unique_lock<std::mutex> lock(_mutex);
            _wake.wait(lock, [this] {
                return _stopping || (!_paused && !_queue.empty());
            });
            // Drain: even when stopping, queued studies are finished
            // before the worker exits.
            if (_queue.empty()) {
                if (_stopping)
                    return;
                continue;
            }
            job = std::move(_queue.front());
            _queue.pop_front();
            auto it = _pendingByClient.find(job.client);
            if (it != _pendingByClient.end() && --it->second == 0)
                _pendingByClient.erase(it);
        }
        ++_inFlight;
        HttpResponse resp = job.path == "/crowd"
                                ? handleCrowd(job.body)
                                : handleStudy(job.body);
        --_inFlight;
        // Count before the bytes go out: a client that has read its
        // response must observe the updated counters on /healthz.
        finalize(job.method, job.path, resp, job.start);
        _loop->complete(job.token, std::move(resp));
    }
}

void
StudyService::finalize(const std::string &method,
                       const std::string &path,
                       const HttpResponse &resp,
                       std::chrono::steady_clock::time_point start)
{
    ++_served;
    if (resp.status == 429)
        ++_rejected;

    // One structured line per request, for ops debugging: what was
    // asked, what came back, how long it took end to end.
    double ms = std::chrono::duration<double, std::milli>(
                    std::chrono::steady_clock::now() - start)
                    .count();
    inform("request method=%s path=%s status=%d ms=%.1f",
           method.empty() ? "-" : method.c_str(),
           path.empty() ? "-" : path.c_str(), resp.status, ms);
}

HttpResponse
StudyService::handle(const HttpRequest &req)
{
    if (req.path == "/healthz") {
        if (req.method != "GET")
            return methodNotAllowed("GET");
        return handleHealthz();
    }
    if (req.path == "/devices") {
        if (req.method != "GET")
            return methodNotAllowed("GET");
        return handleDevices();
    }
    if (req.path == "/study") {
        if (req.method != "POST")
            return methodNotAllowed("POST");
        return handleStudy(req.body);
    }
    if (req.path == "/crowd") {
        if (req.method != "POST")
            return methodNotAllowed("POST");
        return handleCrowd(req.body);
    }
    return errorResponse(404,
                         strfmt("no such endpoint '%s'",
                                req.path.c_str()));
}

HttpResponse
StudyService::handleHealthz()
{
    ServiceStats s = stats();
    JsonWriter w;
    w.beginObject();
    // Top-level status reflects the persistence layer: "degraded"
    // means studies still compute correctly but stopped persisting.
    w.key("status").value(
        _durable && _durable->degraded() ? "degraded" : "ok");
    w.key("cache");
    if (activeCache()) {
        ResultCacheStats cs = cacheStats();
        w.beginObject();
        w.key("hits").value(static_cast<long long>(cs.hits));
        w.key("misses").value(static_cast<long long>(cs.misses));
        w.key("entries").value(static_cast<long long>(cs.entries));
        w.key("capacity").value(static_cast<long long>(cs.capacity));
        w.key("evictions").value(static_cast<long long>(cs.evictions));
        w.endObject();
    } else {
        w.null();
    }
    w.key("store");
    if (_durable) {
        ExperimentStoreStats ss = _durable->storeStats();
        w.beginObject();
        w.key("records").value(static_cast<long long>(ss.records));
        w.key("bytes").value(static_cast<long long>(ss.bytes));
        w.key("hits").value(static_cast<long long>(ss.hits));
        w.key("misses").value(static_cast<long long>(ss.misses));
        w.key("appends").value(static_cast<long long>(ss.appends));
        w.key("syncs").value(static_cast<long long>(ss.syncs));
        w.key("recovered_records")
            .value(static_cast<long long>(ss.logRecords));
        w.key("truncated_bytes")
            .value(static_cast<long long>(ss.truncatedBytes));
        w.key("failed_appends")
            .value(static_cast<long long>(ss.failedAppends));
        w.key("failed_syncs")
            .value(static_cast<long long>(ss.failedSyncs));
        w.key("degraded").value(ss.degraded);
        w.endObject();
    } else {
        w.null();
    }
    // The event loop's own counters: how the transport is doing,
    // independent of what the studies compute.
    w.key("server");
    if (_loop) {
        HttpLoopStats ls = _loop->stats();
        w.beginObject();
        w.key("backend").value(pollerBackendName(_cfg.backend));
        w.key("open").value(static_cast<long long>(ls.open));
        w.key("accepted").value(static_cast<long long>(ls.accepted));
        w.key("keepalive_reuses")
            .value(static_cast<long long>(ls.keepAliveReuses));
        w.key("in_flight").value(static_cast<long long>(s.inFlight));
        w.key("timeouts")
            .value(static_cast<long long>(ls.timeoutsFired));
        w.key("aborted").value(static_cast<long long>(ls.aborted));
        w.key("overload_closed")
            .value(static_cast<long long>(ls.overloadClosed));
        w.key("fd_exhausted_sheds")
            .value(static_cast<long long>(ls.fdExhaustedSheds));
        w.key("bytes_in").value(static_cast<long long>(ls.bytesIn));
        w.key("bytes_out").value(static_cast<long long>(ls.bytesOut));
        w.key("chunked")
            .value(static_cast<long long>(ls.chunkedResponses));
        w.key("parse_errors")
            .value(static_cast<long long>(ls.parseErrors));
        w.endObject();
    } else {
        w.null();
    }
    w.key("queue").beginObject();
    w.key("depth").value(static_cast<long long>(s.queued));
    w.key("capacity").value(static_cast<long long>(_cfg.queueDepth));
    w.endObject();
    w.key("requests").beginObject();
    w.key("served").value(static_cast<long long>(s.served));
    w.key("rejected").value(static_cast<long long>(s.rejected));
    w.key("bad").value(static_cast<long long>(s.badRequests));
    w.endObject();
    w.endObject();
    HttpResponse resp;
    resp.body = w.str() + "\n";
    // Live counters: an intermediary replaying a stale copy would
    // mislead dashboards and the kill-recovery checks.
    resp.headers.emplace_back("Cache-Control", "no-store");
    return resp;
}

HttpResponse
StudyService::handleDevices()
{
    HttpResponse resp;
    resp.body = fleetToJson(DeviceRegistry::builtin().entries()) + "\n";
    resp.headers.emplace_back("Cache-Control", "no-store");
    return resp;
}

HttpResponse
StudyService::handleStudy(const std::string &body)
{
    try {
        HttpResponse resp;
        resp.body = runStudyRequest(body);
        return resp;
    } catch (const JsonError &e) {
        ++_badRequests;
        return errorResponse(400, e.what());
    } catch (const FaultError &e) {
        // Permanent fault (injected or escalated by the supervisor):
        // shed the request instead of crashing the service. The study
        // was not completed; the client should retry later.
        warn("pvar_served: study shed on permanent fault: %s",
             e.what());
        HttpResponse resp = errorResponse(503, e.what());
        resp.headers.emplace_back("Retry-After",
                                  strfmt("%d", retryAfterSeconds()));
        return resp;
    } catch (const std::exception &e) {
        warn("pvar_served: study failed: %s", e.what());
        return errorResponse(500, e.what());
    }
}

HttpResponse
StudyService::handleCrowd(const std::string &body)
{
    try {
        HttpResponse resp;
        resp.body = runCrowdRequest(body);
        return resp;
    } catch (const JsonError &e) {
        ++_badRequests;
        return errorResponse(400, e.what());
    } catch (const FaultError &e) {
        warn("pvar_served: crowd study shed on permanent fault: %s",
             e.what());
        HttpResponse resp = errorResponse(503, e.what());
        resp.headers.emplace_back("Retry-After",
                                  strfmt("%d", retryAfterSeconds()));
        return resp;
    } catch (const std::exception &e) {
        warn("pvar_served: crowd study failed: %s", e.what());
        return errorResponse(500, e.what());
    }
}

std::string
StudyService::runCrowdRequest(const std::string &body)
{
    JsonValue doc;
    std::string error;
    if (!parseJson(body, doc, error))
        throw JsonError(error);
    if (!doc.isObject())
        throw JsonError("crowd request must be a JSON object");
    if (!doc.find("dies"))
        throw JsonError("'dies' is required");

    CrowdStudyConfig cfg;
    cfg.population.size = static_cast<std::uint64_t>(
        intField(doc, "dies", 0, 1));
    cfg.population.seed = static_cast<std::uint64_t>(
        intField(doc, "seed", static_cast<int>(cfg.population.seed),
                 0));
    cfg.strata = intField(doc, "strata", cfg.strata, 1);
    cfg.iterations = intField(doc, "iterations", cfg.iterations, 1);
    if (const JsonValue *target = doc.find("ci_target")) {
        double t = target->asNumber();
        if (t <= 0.0)
            throw JsonError("'ci_target' must be a positive "
                            "percentage");
        cfg.ciTargetPercent = t;
    }
    if (const JsonValue *soc = doc.find("soc")) {
        if (!DeviceRegistry::builtin().find(soc->asString())) {
            throw JsonError(strfmt("unknown SoC or model '%s'",
                                   soc->asString().c_str()));
        }
        cfg.population.socName = soc->asString();
    }
    if (const JsonValue *solver = doc.find("solver")) {
        if (!parseSolverKind(solver->asString(), cfg.solver))
            throw JsonError(
                strfmt("'solver' must be \"stepped\" or \"fast\", "
                       "got \"%s\"",
                       solver->asString().c_str()));
    }

    // Shared deployment knobs: the same fan-out and technique
    // parameters the /study path runs with.
    cfg.jobs = _cfg.study.jobs;
    cfg.batch = _cfg.study.batch;
    cfg.accubench = _cfg.study.accubench;

    std::unique_ptr<DurableLivePointCache> live_points;
    if (_durable) {
        live_points = std::make_unique<DurableLivePointCache>(
            _durable->store());
        cfg.livePoints = live_points.get();
    }

    CrowdStudyResult r = runCrowdStudy(cfg);
    // Exactly the bytes pvar_study --crowd prints for the same input.
    return crowdStudyJson(r) + "\n";
}

std::string
StudyService::runStudyRequest(const std::string &body)
{
    JsonValue doc;
    std::string error;
    if (!parseJson(body, doc, error))
        throw JsonError(error);

    StudyConfig cfg = _cfg.study;
    cfg.cache = activeCache();
    if (doc.isObject()) {
        cfg.iterations =
            intField(doc, "iterations", cfg.iterations, 1);
        if (const JsonValue *ambient = doc.find("ambient")) {
            // Mirror pvar_study --ambient: chamber target plus the
            // cooldown margin.
            double t = ambient->asNumber();
            cfg.thermabox.target = Celsius(t);
            cfg.accubench.cooldownTarget = Celsius(t + 6.0);
        }
        if (const JsonValue *solver = doc.find("solver")) {
            if (!parseSolverKind(solver->asString(), cfg.solver))
                throw JsonError(
                    strfmt("'solver' must be \"stepped\" or \"fast\", "
                           "got \"%s\"",
                           solver->asString().c_str()));
        }
    }

    const JsonValue *soc =
        doc.isObject() ? doc.find("soc") : nullptr;
    const JsonValue *device =
        doc.isObject() ? doc.find("device") : nullptr;
    if (soc && device)
        throw JsonError("'soc' and 'device' are exclusive");

    std::vector<SocStudy> studies;
    if (soc) {
        const RegistryEntry *e =
            DeviceRegistry::builtin().find(soc->asString());
        if (!e) {
            throw JsonError(strfmt("unknown SoC or model '%s'",
                                   soc->asString().c_str()));
        }
        studies.push_back(runEntryStudy(*e, cfg));
    } else if (device) {
        UnitRef ref =
            DeviceRegistry::builtin().findUnit(device->asString());
        if (!ref.entry) {
            throw JsonError(strfmt("unknown unit '%s'",
                                   device->asString().c_str()));
        }
        studies.push_back(runUnitStudy(*ref.entry, ref.unitIndex, cfg));
    } else {
        // A fleet document: the same schema pvar_study --fleet reads.
        // Entries must outlive the flattened task list.
        std::vector<RegistryEntry> fleet = fleetFromJson(doc);
        std::vector<const RegistryEntry *> entries;
        entries.reserve(fleet.size());
        for (const RegistryEntry &e : fleet)
            entries.push_back(&e);
        studies = runStudy(entries, cfg);
    }
    // Exactly the bytes pvar_study --json prints for the same input.
    return toJson(studies) + "\n";
}

ServiceStats
StudyService::stats() const
{
    ServiceStats s;
    s.served = _served.load();
    s.rejected = _rejected.load();
    s.badRequests = _badRequests.load();
    s.inFlight = _inFlight.load();
    std::lock_guard<std::mutex> lock(_mutex);
    s.queued = _queue.size();
    return s;
}

ResultCacheStats
StudyService::cacheStats() const
{
    if (_durable)
        return _durable->lruStats();
    if (!_cache)
        return ResultCacheStats{};
    return _cache->stats();
}

HttpLoopStats
StudyService::loopStats() const
{
    if (!_loop)
        return HttpLoopStats{};
    return _loop->stats();
}

ExperimentStoreStats
StudyService::storeStats() const
{
    if (!_durable)
        return ExperimentStoreStats{};
    return _durable->storeStats();
}

void
StudyService::pauseWorkersForTest()
{
    std::lock_guard<std::mutex> lock(_mutex);
    _paused = true;
}

void
StudyService::resumeWorkersForTest()
{
    {
        std::lock_guard<std::mutex> lock(_mutex);
        _paused = false;
    }
    _wake.notify_all();
}

} // namespace pvar
