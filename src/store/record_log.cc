#include "store/record_log.hh"

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <vector>

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include "fault/fault.hh"
#include "fault/sysfault.hh"
#include "sim/logging.hh"

namespace pvar
{

namespace
{

constexpr char kMagic[8] = {'P', 'V', 'A', 'R', 'L', 'O', 'G', '1'};
constexpr std::size_t kHeaderBytes = sizeof(kMagic);
constexpr std::size_t kPrefixBytes = 8; // length u32 + crc32 u32

/**
 * Upper bound on one payload. Far above any real record (a full
 * 5-iteration experiment with traces is ~1 MiB); its real job is to
 * reject lengths fabricated by a corrupted prefix before they drive a
 * huge allocation.
 */
constexpr std::uint32_t kMaxPayloadBytes = 256u * 1024 * 1024;

std::uint32_t
loadLe32(const unsigned char *p)
{
    return static_cast<std::uint32_t>(p[0]) |
           static_cast<std::uint32_t>(p[1]) << 8 |
           static_cast<std::uint32_t>(p[2]) << 16 |
           static_cast<std::uint32_t>(p[3]) << 24;
}

void
storeLe32(unsigned char *p, std::uint32_t v)
{
    p[0] = static_cast<unsigned char>(v);
    p[1] = static_cast<unsigned char>(v >> 8);
    p[2] = static_cast<unsigned char>(v >> 16);
    p[3] = static_cast<unsigned char>(v >> 24);
}

/** pread() exactly @p size bytes; false on EOF, short read, or error. */
bool
preadAll(int fd, void *buf, std::size_t size, std::int64_t offset)
{
    unsigned char *p = static_cast<unsigned char *>(buf);
    while (size > 0) {
        ssize_t n = ::pread(fd, p, size, offset);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        if (n == 0)
            return false;
        p += n;
        size -= static_cast<std::size_t>(n);
        offset += n;
    }
    return true;
}

// Goes through the store.write fault site: an injected short write
// retries here exactly like a real one, and a following ENOSPC hit
// leaves a torn record for recovery to truncate.
bool
writeAll(int fd, const void *buf, std::size_t size)
{
    const unsigned char *p = static_cast<const unsigned char *>(buf);
    while (size > 0) {
        ssize_t n = faultWriteStore(fd, p, size);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        p += n;
        size -= static_cast<std::size_t>(n);
    }
    return true;
}

} // namespace

std::uint32_t
crc32(const void *data, std::size_t size)
{
    // Table-driven IEEE CRC-32, table built on first use.
    static const std::uint32_t *table = [] {
        static std::uint32_t t[256];
        for (std::uint32_t i = 0; i < 256; ++i) {
            std::uint32_t c = i;
            for (int k = 0; k < 8; ++k)
                c = (c & 1) ? 0xedb88320u ^ (c >> 1) : c >> 1;
            t[i] = c;
        }
        return t;
    }();

    std::uint32_t c = 0xffffffffu;
    const unsigned char *p = static_cast<const unsigned char *>(data);
    for (std::size_t i = 0; i < size; ++i)
        c = table[(c ^ p[i]) & 0xffu] ^ (c >> 8);
    return c ^ 0xffffffffu;
}

std::size_t
RecordLog::recordBytes(std::size_t key_size, std::size_t value_size)
{
    return kPrefixBytes + 4 + key_size + 4 + value_size;
}

RecordLog::RecordLog(std::string path, int sync_every)
    : _path(std::move(path)), _syncEvery(sync_every)
{
    _fd = ::open(_path.c_str(), O_RDWR | O_CREAT | O_CLOEXEC, 0644);
    if (_fd < 0) {
        fatal("record log: cannot open '%s': %s", _path.c_str(),
              std::strerror(errno));
    }
    recover();
}

RecordLog::~RecordLog()
{
    if (_fd >= 0) {
        if (_unsynced > 0)
            sync();
        ::close(_fd);
    }
}

void
RecordLog::recover()
{
    struct stat st{};
    if (::fstat(_fd, &st) != 0) {
        fatal("record log: fstat '%s': %s", _path.c_str(),
              std::strerror(errno));
    }
    std::int64_t size = st.st_size;

    if (size == 0) {
        // Fresh file: write the header eagerly so a crash right after
        // creation still leaves a well-formed (empty) log. A full disk
        // here (ENOSPC) is a degradation, not a death sentence: the
        // log starts memory-only and every append refuses, exactly as
        // if the first append had failed. This matters most during
        // compaction, whose fresh sibling log must never fatal the
        // process.
        if (!writeAll(_fd, kMagic, kHeaderBytes)) {
            warn("record log: cannot initialize '%s': %s — store "
                 "degrades to memory-only",
                 _path.c_str(), std::strerror(errno));
            _degraded = true;
            _end = 0;
            return;
        }
        ::fsync(_fd);
        _end = static_cast<std::int64_t>(kHeaderBytes);
        _stats.bytes = kHeaderBytes;
        return;
    }

    // A crash during creation can leave a partial header. Any prefix
    // of the magic is our own torn write: reset to an empty log. A
    // mismatch is some other file — refuse to clobber it.
    std::size_t have =
        std::min<std::size_t>(static_cast<std::size_t>(size),
                              kHeaderBytes);
    char magic[kHeaderBytes];
    if (!preadAll(_fd, magic, have, 0) ||
        std::memcmp(magic, kMagic, have) != 0) {
        fatal("record log: '%s' is not a pvar record log",
              _path.c_str());
    }
    if (size < static_cast<std::int64_t>(kHeaderBytes)) {
        _stats.truncatedBytes = static_cast<std::uint64_t>(size);
        if (::ftruncate(_fd, 0) != 0 ||
            ::lseek(_fd, 0, SEEK_SET) < 0 ||
            !writeAll(_fd, kMagic, kHeaderBytes)) {
            warn("record log: cannot reinitialize '%s': %s — store "
                 "degrades to memory-only",
                 _path.c_str(), std::strerror(errno));
            _degraded = true;
            _end = 0;
            return;
        }
        ::fsync(_fd);
        _end = static_cast<std::int64_t>(kHeaderBytes);
        _stats.bytes = kHeaderBytes;
        return;
    }

    // Walk the records, keeping the longest valid prefix. readAt()
    // bounds-checks against _end, so expose the whole file while
    // scanning and pull _end back to the last valid record after.
    _end = size;
    std::int64_t pos = static_cast<std::int64_t>(kHeaderBytes);
    while (pos < size) {
        std::string k, v;
        if (!readAt(pos, k, v))
            break;
        pos += static_cast<std::int64_t>(
            recordBytes(k.size(), v.size()));
        ++_stats.records;
    }

    if (pos < size) {
        _stats.truncatedBytes = static_cast<std::uint64_t>(size - pos);
        warn("record log: '%s' has a torn tail; truncating %lld bytes "
             "after %llu valid records",
             _path.c_str(), static_cast<long long>(size - pos),
             static_cast<unsigned long long>(_stats.records));
        if (::ftruncate(_fd, pos) != 0) {
            fatal("record log: cannot truncate '%s': %s",
                  _path.c_str(), std::strerror(errno));
        }
        ::fsync(_fd);
    }
    _end = pos;
    _stats.bytes = static_cast<std::uint64_t>(pos);
}

std::int64_t
RecordLog::append(const std::string &key, const std::string &value)
{
    std::size_t payload_size = 4 + key.size() + 4 + value.size();
    if (payload_size > kMaxPayloadBytes) {
        warn("record log: record too large (%zu bytes); dropped",
             payload_size);
        return -1;
    }

    if (_degraded && _end == 0) {
        // The header never made it to disk (ENOSPC at init): the file
        // is not a valid log, so records must not follow.
        ++_stats.failedAppends;
        return -1;
    }

    if (faultCheck(FaultSite::StoreAppend).fired) {
        ++_stats.failedAppends;
        if (!_degraded) {
            warn("record log: append to '%s' failed: injected I/O "
                 "fault",
                 _path.c_str());
        }
        _degraded = true;
        return -1;
    }

    // Assemble the whole record so it reaches the kernel in one
    // write(): a crash can then only tear it at the file tail, which
    // recovery truncates away.
    std::vector<unsigned char> buf(kPrefixBytes + payload_size);
    storeLe32(buf.data() + 8, static_cast<std::uint32_t>(key.size()));
    std::memcpy(buf.data() + 12, key.data(), key.size());
    storeLe32(buf.data() + 12 + key.size(),
              static_cast<std::uint32_t>(value.size()));
    std::memcpy(buf.data() + 16 + key.size(), value.data(),
                value.size());
    storeLe32(buf.data(), static_cast<std::uint32_t>(payload_size));
    storeLe32(buf.data() + 4,
              crc32(buf.data() + kPrefixBytes, payload_size));

    if (::lseek(_fd, _end, SEEK_SET) < 0 ||
        !writeAll(_fd, buf.data(), buf.size())) {
        ++_stats.failedAppends;
        warn("record log: append to '%s' failed: %s", _path.c_str(),
             std::strerror(errno));
        _degraded = true;
        return -1;
    }

    std::int64_t offset = _end;
    _end += static_cast<std::int64_t>(buf.size());
    _stats.bytes = static_cast<std::uint64_t>(_end);
    ++_stats.records;
    ++_stats.appends;

    if (_syncEvery > 0 && ++_unsynced >= _syncEvery)
        sync();
    return offset;
}

bool
RecordLog::readAt(std::int64_t offset, std::string &key,
                  std::string &value) const
{
    if (offset < static_cast<std::int64_t>(kHeaderBytes) ||
        offset + static_cast<std::int64_t>(kPrefixBytes) > _end)
        return false;

    unsigned char prefix[kPrefixBytes];
    if (!preadAll(_fd, prefix, kPrefixBytes, offset))
        return false;
    std::uint32_t length = loadLe32(prefix);
    std::uint32_t want_crc = loadLe32(prefix + 4);
    if (length < 8 || length > kMaxPayloadBytes ||
        offset + static_cast<std::int64_t>(kPrefixBytes + length) >
            _end)
        return false;

    std::vector<unsigned char> payload(length);
    if (!preadAll(_fd, payload.data(), length,
                  offset + static_cast<std::int64_t>(kPrefixBytes)))
        return false;
    if (crc32(payload.data(), length) != want_crc)
        return false;

    std::uint32_t key_len = loadLe32(payload.data());
    if (key_len > length - 8)
        return false;
    std::uint32_t value_len = loadLe32(payload.data() + 4 + key_len);
    if (static_cast<std::uint64_t>(key_len) + value_len + 8 != length)
        return false;

    key.assign(reinterpret_cast<char *>(payload.data()) + 4, key_len);
    value.assign(
        reinterpret_cast<char *>(payload.data()) + 8 + key_len,
        value_len);
    return true;
}

void
RecordLog::scan(const std::function<void(std::int64_t,
                                         const std::string &,
                                         const std::string &)> &fn)
    const
{
    std::int64_t pos = static_cast<std::int64_t>(kHeaderBytes);
    std::string key, value;
    while (pos < _end && readAt(pos, key, value)) {
        fn(pos, key, value);
        pos += static_cast<std::int64_t>(
            recordBytes(key.size(), value.size()));
    }
}

void
RecordLog::sync()
{
    // _end is tracked in memory rather than re-fetched: recovery
    // established it and append() is the only writer.
    if (_fd < 0)
        return;
    int rc;
    do {
        rc = faultFsyncStore(_fd);
    } while (rc < 0 && errno == EINTR);
    if (rc == 0) {
        ++_stats.syncs;
        _unsynced = 0;
        return;
    }
    // The durability point was NOT reached: appends since the last
    // good fsync may not survive power loss. Keep the unsynced window
    // open so a later sync can retry, and mark the log degraded.
    ++_stats.failedSyncs;
    if (!_degraded) {
        warn("record log: fsync '%s' failed: %s — batched appends are "
             "not durable",
             _path.c_str(), std::strerror(errno));
    }
    _degraded = true;
}

} // namespace pvar
