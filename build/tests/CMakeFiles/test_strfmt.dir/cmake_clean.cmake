file(REMOVE_RECURSE
  "CMakeFiles/test_strfmt.dir/test_strfmt.cc.o"
  "CMakeFiles/test_strfmt.dir/test_strfmt.cc.o.d"
  "test_strfmt"
  "test_strfmt.pdb"
  "test_strfmt[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_strfmt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
