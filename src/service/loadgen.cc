#include "service/loadgen.hh"

#include <algorithm>
#include <atomic>
#include <bit>
#include <chrono>
#include <cmath>
#include <thread>

#include "report/json.hh"
#include "sim/strfmt.hh"

namespace pvar
{

namespace
{

/** 32 linear sub-buckets per power-of-two octave. */
constexpr std::uint64_t kSubBuckets = 32;

/** Enough octaves to cover any latency a run can produce. */
constexpr std::size_t kBucketCount = 2 * kSubBuckets + 57 * kSubBuckets;

} // namespace

LatencyHistogram::LatencyHistogram() : _buckets(kBucketCount, 0) {}

std::size_t
LatencyHistogram::bucketIndex(std::uint64_t us)
{
    // The first two octaves ([0, 64)) are exact.
    if (us < 2 * kSubBuckets)
        return static_cast<std::size_t>(us);
    int msb = 63 - std::countl_zero(us);
    int shift = msb - 5;
    std::size_t index = 2 * kSubBuckets +
                        static_cast<std::size_t>(msb - 6) * kSubBuckets +
                        static_cast<std::size_t>((us >> shift) &
                                                 (kSubBuckets - 1));
    return std::min(index, kBucketCount - 1);
}

std::uint64_t
LatencyHistogram::bucketValue(std::size_t index)
{
    if (index < 2 * kSubBuckets)
        return index;
    std::size_t octave = (index - 2 * kSubBuckets) / kSubBuckets;
    std::uint64_t sub = (index - 2 * kSubBuckets) % kSubBuckets;
    int shift = static_cast<int>(octave) + 1;
    std::uint64_t lower = (kSubBuckets + sub) << shift;
    // Bucket midpoint: halves the worst-case quantization error.
    return lower + (std::uint64_t{1} << shift) / 2;
}

void
LatencyHistogram::record(std::uint64_t us)
{
    ++_buckets[bucketIndex(us)];
    ++_count;
    _sumUs += us;
    _maxUs = std::max(_maxUs, us);
}

void
LatencyHistogram::merge(const LatencyHistogram &other)
{
    for (std::size_t i = 0; i < kBucketCount; ++i)
        _buckets[i] += other._buckets[i];
    _count += other._count;
    _sumUs += other._sumUs;
    _maxUs = std::max(_maxUs, other._maxUs);
}

double
LatencyHistogram::meanUs() const
{
    return _count == 0
               ? 0.0
               : static_cast<double>(_sumUs) /
                     static_cast<double>(_count);
}

std::uint64_t
LatencyHistogram::percentileUs(double p) const
{
    if (_count == 0)
        return 0;
    double clamped = std::clamp(p, 0.0, 100.0);
    std::uint64_t target = static_cast<std::uint64_t>(
        std::ceil(clamped / 100.0 * static_cast<double>(_count)));
    target = std::max<std::uint64_t>(target, 1);
    std::uint64_t seen = 0;
    for (std::size_t i = 0; i < kBucketCount; ++i) {
        seen += _buckets[i];
        if (seen >= target)
            return std::min(bucketValue(i), _maxUs);
    }
    return _maxUs;
}

std::uint64_t
LoadGenReport::non2xx() const
{
    std::uint64_t n = 0;
    for (const auto &[status, count] : statuses)
        if (status < 200 || status >= 300)
            n += count;
    return n;
}

std::uint64_t
LoadGenReport::shed() const
{
    std::uint64_t n = 0;
    for (const auto &[status, count] : statuses)
        if (status == 429 || status == 503)
            n += count;
    return n;
}

namespace
{

using Clock = std::chrono::steady_clock;

struct WorkerState
{
    std::uint64_t requests = 0;
    std::uint64_t warmup = 0;
    std::uint64_t errors = 0;
    std::uint64_t reuses = 0;
    std::uint64_t retries = 0;
    std::uint64_t bodyMismatches = 0;
    std::map<int, std::uint64_t> statuses;
    LatencyHistogram hist;
    std::string sample;
};

/**
 * Capped jittered exponential backoff for attempt @p attempt. A shed
 * response's Retry-After (seconds) raises the floor; the cap always
 * wins so a hostile header cannot park a worker for minutes. Jitter
 * (an LCG on @p rng) spreads retries over [ms/2, ms] so a shed burst
 * does not come back as a synchronized thundering herd.
 */
std::int64_t
backoffMs(const LoadGenConfig &cfg, int attempt, int retry_after_sec,
          std::uint64_t &rng)
{
    std::int64_t base = std::max(cfg.retryBaseMs, 1);
    std::int64_t cap = std::max<std::int64_t>(cfg.retryCapMs, base);
    std::int64_t ms = base << std::min(attempt, 20);
    ms = std::min(ms, cap);
    if (retry_after_sec > 0) {
        ms = std::max<std::int64_t>(
            ms, static_cast<std::int64_t>(retry_after_sec) * 1000);
        ms = std::min(ms, cap);
    }
    rng = rng * 6364136223846793005ull + 1442695040888963407ull;
    std::int64_t half = ms / 2;
    return half + static_cast<std::int64_t>(
                      (rng >> 33) %
                      static_cast<std::uint64_t>(ms - half + 1));
}

void
driveWorker(const LoadGenConfig &cfg, int worker, Clock::time_point t0,
            Clock::time_point warmup_end, Clock::time_point deadline,
            std::atomic<std::uint64_t> *arrival, WorkerState &out)
{
    HttpClient client(cfg.host, cfg.port, cfg.limits);
    const double interval_us =
        cfg.targetRps > 0.0 ? 1e6 / cfg.targetRps : 0.0;
    std::uint64_t rng =
        0x9e3779b97f4a7c15ull * (static_cast<std::uint64_t>(worker) + 1);

    while (true) {
        Clock::time_point now = Clock::now();
        if (now >= deadline)
            break;
        // Open loop: latency is measured from the *scheduled* arrival
        // so queueing delay the service causes is charged to it.
        Clock::time_point measure_from = now;
        if (interval_us > 0.0) {
            std::uint64_t i = arrival->fetch_add(1);
            Clock::time_point sched =
                t0 + std::chrono::microseconds(static_cast<
                         std::int64_t>(
                         static_cast<double>(i) * interval_us));
            if (sched >= deadline)
                break;
            std::this_thread::sleep_until(sched);
            measure_from = sched;
        }

        // One logical request: up to 1 + maxRetries attempts. Every
        // attempt that produced a response is recorded (statuses count
        // wire responses, not logical requests); only the decision to
        // go again is retry-specific.
        for (int attempt = 0;; ++attempt) {
            std::string error;
            HttpResponse resp;
            bool ok = client.send(cfg.method, cfg.path, cfg.body,
                                  !cfg.keepAlive, error) &&
                      client.readResponse(resp, error);
            Clock::time_point end = Clock::now();
            if (!ok) {
                client.close(); // reconnect on the next attempt
                if (attempt < cfg.maxRetries && end < deadline) {
                    ++out.retries;
                    std::this_thread::sleep_for(
                        std::chrono::milliseconds(
                            backoffMs(cfg, attempt, 0, rng)));
                    measure_from = Clock::now();
                    continue;
                }
                ++out.errors;
                break;
            }

            if (measure_from < warmup_end) {
                ++out.warmup;
            } else {
                ++out.requests;
                ++out.statuses[resp.status];
                out.hist.record(static_cast<std::uint64_t>(
                    std::chrono::duration_cast<
                        std::chrono::microseconds>(end - measure_from)
                        .count()));
                if (resp.status == 200) {
                    if (!cfg.expectBody.empty() &&
                        resp.body != cfg.expectBody)
                        ++out.bodyMismatches;
                    if (out.sample.empty())
                        out.sample = resp.body;
                }
            }

            bool is_shed = resp.status == 429 || resp.status == 503;
            if (is_shed && attempt < cfg.maxRetries &&
                end < deadline) {
                long long after_sec = 0;
                parseIntStrict(resp.header("retry-after"), after_sec);
                ++out.retries;
                std::this_thread::sleep_for(std::chrono::milliseconds(
                    backoffMs(cfg, attempt,
                              static_cast<int>(after_sec), rng)));
                measure_from = Clock::now();
                continue;
            }
            break;
        }
    }
    out.reuses = client.reuses();
}

} // namespace

LoadGenReport
runLoadGen(const LoadGenConfig &cfg)
{
    int connections = std::max(cfg.connections, 1);
    Clock::time_point t0 = Clock::now();
    Clock::time_point warmup_end =
        t0 + std::chrono::milliseconds(std::max(cfg.warmupMs, 0));
    Clock::time_point deadline =
        warmup_end +
        std::chrono::milliseconds(std::max(cfg.durationMs, 1));

    std::atomic<std::uint64_t> arrival{0};
    std::vector<WorkerState> states(connections);
    std::vector<std::thread> threads;
    threads.reserve(connections);
    for (int c = 0; c < connections; ++c) {
        threads.emplace_back([&, c] {
            driveWorker(cfg, c, t0, warmup_end, deadline, &arrival,
                        states[c]);
        });
    }
    for (std::thread &t : threads)
        t.join();
    double elapsed =
        std::chrono::duration<double>(Clock::now() - warmup_end)
            .count();

    LoadGenReport report;
    for (const WorkerState &s : states) {
        report.requests += s.requests;
        report.warmup += s.warmup;
        report.errors += s.errors;
        report.keepAliveReuses += s.reuses;
        report.retries += s.retries;
        report.bodyMismatches += s.bodyMismatches;
        for (const auto &[status, count] : s.statuses)
            report.statuses[status] += count;
        report.latency.merge(s.hist);
        if (report.sampleBody.empty() && !s.sample.empty())
            report.sampleBody = s.sample;
    }
    report.elapsedSec = elapsed;
    report.rps = elapsed > 0.0
                     ? static_cast<double>(report.requests) / elapsed
                     : 0.0;
    return report;
}

std::string
loadGenReportJson(const LoadGenConfig &cfg, const LoadGenReport &r)
{
    JsonWriter w;
    w.beginObject();
    w.key("host").value(cfg.host);
    w.key("port").value(static_cast<long long>(cfg.port));
    w.key("method").value(cfg.method);
    w.key("path").value(cfg.path);
    w.key("keep_alive").value(cfg.keepAlive);
    w.key("connections").value(static_cast<long long>(cfg.connections));
    w.key("target_rps").value(cfg.targetRps);
    w.key("duration_ms").value(static_cast<long long>(cfg.durationMs));
    w.key("warmup_ms").value(static_cast<long long>(cfg.warmupMs));
    w.key("max_retries").value(static_cast<long long>(cfg.maxRetries));
    w.key("requests").value(static_cast<long long>(r.requests));
    w.key("warmup_requests").value(static_cast<long long>(r.warmup));
    w.key("errors").value(static_cast<long long>(r.errors));
    w.key("non_2xx").value(static_cast<long long>(r.non2xx()));
    w.key("shed").value(static_cast<long long>(r.shed()));
    w.key("retries").value(static_cast<long long>(r.retries));
    w.key("body_mismatches")
        .value(static_cast<long long>(r.bodyMismatches));
    w.key("statuses").beginObject();
    for (const auto &[status, count] : r.statuses)
        w.key(strfmt("%d", status))
            .value(static_cast<long long>(count));
    w.endObject();
    w.key("elapsed_sec").value(r.elapsedSec);
    w.key("rps").value(r.rps);
    w.key("keepalive_reuses")
        .value(static_cast<long long>(r.keepAliveReuses));
    w.key("latency_us").beginObject();
    w.key("p50").value(
        static_cast<long long>(r.latency.percentileUs(50.0)));
    w.key("p90").value(
        static_cast<long long>(r.latency.percentileUs(90.0)));
    w.key("p95").value(
        static_cast<long long>(r.latency.percentileUs(95.0)));
    w.key("p99").value(
        static_cast<long long>(r.latency.percentileUs(99.0)));
    w.key("mean").value(r.latency.meanUs());
    w.key("max").value(static_cast<long long>(r.latency.maxUs()));
    w.endObject();
    w.endObject();
    return w.str() + "\n";
}

} // namespace pvar
