/**
 * @file
 * The long-running study service behind pvar_served.
 *
 * Exposes the registry/fleet/ACCUBENCH machinery over HTTP:
 *
 *   GET  /healthz  liveness + cache/queue/request counters
 *   GET  /devices  the built-in registry as a fleet document
 *   POST /study    run the protocol; body is either a fleet document
 *                  (the same schema pvar_study --fleet reads) or a
 *                  single-target request:
 *                    {"soc": "SD-805"} | {"device": "dev-363"}
 *                  optionally with "iterations" and "ambient"
 *                  overrides (fleet documents accept them as wrapper
 *                  keys next to "fleet").
 *   POST /crowd    characterize an N-die population by stratified
 *                  sampling (sampling/sampler.hh); body:
 *                    {"dies": 100000}
 *                  optionally with "strata", "ci_target", "seed",
 *                  "iterations", "soc", and "solver" overrides. The
 *                  response is exactly the bytes pvar_study --crowd
 *                  prints for the same parameters.
 *
 * Architecture: one acceptor thread parses requests and answers the
 * cheap endpoints inline; /study jobs go through a *bounded* queue to
 * a small pool of study workers (each of which fans its experiments
 * out onto the PR 1 parallel scheduler). A full queue answers 429
 * with a Retry-After header — backpressure instead of unbounded
 * memory. stop() drains: no new connections, queued studies finish,
 * workers join.
 *
 * Determinism contract: byte-identical request bodies produce
 * byte-identical response bodies — cached or not, at any jobs count.
 * POST /study responses are exactly the bytes `pvar_study --json`
 * emits for the same input, so clients can diff CLI and service
 * output directly. All experiment work is routed through the
 * content-addressed ResultCache, so identical study units are
 * simulated once per cache lifetime.
 */

#ifndef PVAR_SERVICE_SERVICE_HH
#define PVAR_SERVICE_SERVICE_HH

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "accubench/protocol.hh"
#include "service/http.hh"
#include "store/durable_cache.hh"
#include "store/result_cache.hh"

namespace pvar
{

/** Service deployment knobs. */
struct ServiceConfig
{
    /** Bind address (loopback by default; widen deliberately). */
    std::string host = "127.0.0.1";

    /** Listen port; 0 picks an ephemeral port (see port()). */
    int port = 0;

    /** Study worker threads (concurrent /study jobs). */
    int workers = 2;

    /** Bounded pending-study queue depth; beyond it, 429. */
    std::size_t queueDepth = 8;

    /** Seconds a 429 tells the client to wait before retrying. */
    int retryAfterSec = 1;

    /** Result-cache capacity, in experiments; 0 disables caching. */
    std::size_t cacheEntries = 128;

    /**
     * Durable store directory. When set, results are persisted to an
     * append-only log under this directory and reloaded on restart
     * (warm starts), with the LRU above as the memory layer; empty
     * keeps the cache memory-only. See store/durable_cache.hh.
     */
    std::string cacheDir;

    /** fsync batching for the durable store's record log. */
    int storeSyncEvery = 8;

    /**
     * Base study settings (iterations, ambient, experiment jobs).
     * Per-request "iterations"/"ambient" override a copy.
     */
    StudyConfig study;

    /** Transport limits for each connection. */
    HttpLimits limits;
};

/** Point-in-time counters for /healthz and tests. */
struct ServiceStats
{
    std::uint64_t served = 0;    ///< responses written (any status)
    std::uint64_t rejected = 0;  ///< 429 backpressure responses
    std::uint64_t badRequests = 0; ///< 400 responses
    std::size_t queued = 0;      ///< studies waiting for a worker
};

class StudyService
{
  public:
    explicit StudyService(ServiceConfig cfg);
    ~StudyService();

    StudyService(const StudyService &) = delete;
    StudyService &operator=(const StudyService &) = delete;

    /**
     * Bind, listen, and spawn the acceptor + worker threads. Fatal on
     * bind/listen failure (the deployment is unusable).
     */
    void start();

    /**
     * Graceful drain: stop accepting, let queued studies finish,
     * join every thread. Idempotent.
     */
    void stop();

    /** The bound port (useful with cfg.port = 0). */
    int port() const { return _port; }

    ServiceStats stats() const;
    ResultCacheStats cacheStats() const;

    /** Durable-store counters; zeros when no cacheDir is configured. */
    ExperimentStoreStats storeStats() const;

    /**
     * Pause/resume the study workers. Test hook: with workers paused,
     * queued studies accumulate deterministically so backpressure can
     * be exercised without racing the workers.
     */
    void pauseWorkersForTest();
    void resumeWorkersForTest();

    /** Handle one parsed request (transport-free; tests use this). */
    HttpResponse handle(const HttpRequest &req);

  private:
    struct Job
    {
        int fd;
        std::string body;
        /** Request identity + arrival time for the per-request log. */
        std::string method;
        std::string path;
        std::chrono::steady_clock::time_point start;
    };

    ServiceConfig _cfg;
    int _listenFd = -1;
    int _port = 0;
    std::unique_ptr<ResultCache> _cache;
    std::unique_ptr<DurableCache> _durable;

    std::thread _acceptor;
    std::vector<std::thread> _workers;

    mutable std::mutex _mutex;
    std::condition_variable _wake;
    std::deque<Job> _queue;
    bool _stopping = false;
    bool _paused = false;

    std::atomic<std::uint64_t> _served{0};
    std::atomic<std::uint64_t> _rejected{0};
    std::atomic<std::uint64_t> _badRequests{0};

    void acceptLoop();
    void workerLoop(int worker_id);
    void handleConnection(int fd);
    void finishResponse(int fd, const HttpResponse &resp,
                        const std::string &method,
                        const std::string &path,
                        std::chrono::steady_clock::time_point start);

    /** The active experiment memoizer: durable, memory, or none. */
    ExperimentCache *activeCache();

    HttpResponse handleHealthz();
    HttpResponse handleDevices();
    HttpResponse handleStudy(const std::string &body);
    HttpResponse handleCrowd(const std::string &body);

    /** Run the study a /study body describes (throws JsonError). */
    std::string runStudyRequest(const std::string &body);

    /** Run the crowd study a /crowd body describes (throws JsonError). */
    std::string runCrowdRequest(const std::string &body);
};

} // namespace pvar

#endif // PVAR_SERVICE_SERVICE_HH
