/**
 * @file
 * Regenerates paper Figs 8a/8b: SD-820 (LG G5) process variation.
 * The study powers the G5 from the Monsoon at 4.4 V — its battery's
 * maximum — because at the nominal 3.85 V the phone's input-voltage
 * throttle would mask the thermal effects entirely (see Fig 10).
 */

#include "soc_figure.hh"

using namespace pvar;

int
main()
{
    SocFigureSpec spec;
    spec.figureId = "Fig 8";
    spec.socName = "SD-820";
    spec.paperPerfPercent = 4.0;
    spec.paperEnergyPercent = 10.0;
    spec.perfTolerance = 3.5;
    return runSocFigure(spec);
}
