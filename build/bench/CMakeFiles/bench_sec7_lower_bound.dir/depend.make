# Empty dependencies file for bench_sec7_lower_bound.
# This may be replaced when dependencies are built.
