/**
 * @file
 * Experiment runner: ACCUBENCH iterations under controlled conditions.
 *
 * Reproduces the paper's §III procedure end to end: the device sits
 * inside a THERMABOX, is powered by a Monsoon (or its own battery),
 * the app confirms the chamber is within its target band, and then
 * runs N back-to-back ACCUBENCH iterations in one of two modes:
 *
 *  - UNCONSTRAINED: performance governor, free thermal throttling —
 *    measures performance variation;
 *  - FIXED-FREQUENCY: all clusters pinned at a low OPP that never
 *    throttles — measures energy variation at equal work.
 */

#ifndef PVAR_ACCUBENCH_EXPERIMENT_HH
#define PVAR_ACCUBENCH_EXPERIMENT_HH

#include <cstdint>
#include <map>
#include <string>

#include "accubench/accubench.hh"
#include "accubench/result.hh"
#include "device/device.hh"
#include "thermabox/thermabox.hh"

namespace pvar
{

/** The paper's two workload configurations. */
enum class WorkloadMode
{
    Unconstrained,
    FixedFrequency,
};

/** Power-source selection. */
enum class SupplyChoice
{
    /** Monsoon programmed to the battery's nominal voltage (default). */
    MonsoonNominal,

    /** Monsoon programmed to an explicit voltage. */
    MonsoonExplicit,

    /** The phone's own battery. */
    Battery,
};

/**
 * Storage interface for live-point checkpoints: opaque serialized
 * simulator state keyed by the full canonical experiment key, saved
 * the first time a protocol reaches its post-warmup capture point and
 * restored on re-runs so the stabilize/warmup/cooldown prefix is
 * skipped. Declared here (not in store/) because the experiment layer
 * cannot depend on the durability layer; the durable store adapts
 * itself to this interface (store/durable_cache.hh), and tests/bench
 * use the in-memory implementation below.
 *
 * Contract: fetch() returns true only for a value previously stored
 * under the exact same key that still validates; implementations must
 * treat corruption as a miss. Restoring is transactional at the call
 * site (batch.cc rolls back to the cold state when a fetched value
 * fails to decode), so a live point can make a run *faster*, never
 * *different*.
 */
class LivePointCache
{
  public:
    virtual ~LivePointCache() = default;

    /** Fetch the checkpoint stored under @p key_text, if any. */
    virtual bool fetch(const std::string &key_text,
                       std::string &out) = 0;

    /** Store (or supersede) the checkpoint for @p key_text. */
    virtual void store(const std::string &key_text,
                       const std::string &value) = 0;
};

/** Process-local LivePointCache (tests, benchmarks). */
class MemoryLivePointCache : public LivePointCache
{
  public:
    bool
    fetch(const std::string &key_text, std::string &out) override
    {
        auto it = _map.find(key_text);
        if (it == _map.end())
            return false;
        out = it->second;
        return true;
    }

    void
    store(const std::string &key_text, const std::string &value) override
    {
        _map[key_text] = value;
    }

    std::size_t size() const { return _map.size(); }

  private:
    std::map<std::string, std::string> _map;
};

/** Full experiment configuration. */
struct ExperimentConfig
{
    WorkloadMode mode = WorkloadMode::Unconstrained;

    /** Pinned frequency for FIXED-FREQUENCY mode. */
    MegaHertz fixedFrequency{1190.0};

    /** Back-to-back iterations (paper: minimum 5). */
    int iterations = 5;

    AccubenchConfig accubench;
    ThermaboxParams thermabox;

    SupplyChoice supply = SupplyChoice::MonsoonNominal;

    /** Voltage for SupplyChoice::MonsoonExplicit. */
    Volts monsoonVoltage{3.85};

    /** Battery state of charge for SupplyChoice::Battery. */
    double batterySoc = 0.95;

    /** Simulation step. */
    Time dt = Time::msec(10);

    /**
     * Thermal solver: Stepped (default) is the bit-identity reference
     * integrator; Fast advances analytically between simulator events
     * (outputs agree to tolerance, not bit-for-bit; ~10-100x faster).
     */
    SolverKind solver = SolverKind::Stepped;

    /** Soak the device to the chamber target before iteration 1. */
    bool soakFirst = true;

    /**
     * Retry attempt discriminator, set by the supervised scheduler
     * (0 = first attempt). It feeds the cache key — so a retried
     * attempt never aliases the attempt it replaces — and re-keys the
     * device's sensor noise stream via buildDevice()'s seed salt.
     */
    std::uint64_t retrySalt = 0;

    /**
     * Live-point checkpointing (optional). When a cache is attached
     * and `livePointKey` is non-empty, the protocol restores the
     * post-warmup capture state stored under the key (skipping the
     * stabilize/warmup/cooldown prefix of iteration 0) or, on a cold
     * run, captures it at the capture point for the next run.
     *
     * Deliberately EXCLUDED from the result cache key
     * (writeExperimentConfig): warm and cold runs produce
     * byte-identical results — that is the whole contract — so they
     * must share one cache entry.
     */
    LivePointCache *livePoints = nullptr;
    std::string livePointKey;
};

/**
 * Run one experiment (N iterations) on one device.
 *
 * The device's DVFS mode, supply and environment are configured from
 * `cfg`; the device is restored to performance mode afterwards.
 */
ExperimentResult runExperiment(Device &device, const ExperimentConfig &cfg);

} // namespace pvar

#endif // PVAR_ACCUBENCH_EXPERIMENT_HH
