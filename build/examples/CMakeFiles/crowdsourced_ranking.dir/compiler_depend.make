# Empty compiler generated dependencies file for crowdsourced_ranking.
# This may be replaced when dependencies are built.
