#include "sim/trace.hh"

#include <algorithm>
#include <fstream>
#include <limits>

#include "sim/logging.hh"
#include "sim/strfmt.hh"

namespace pvar
{

TraceChannel::TraceChannel(std::string channel_name)
    : _name(std::move(channel_name))
{
}

void
TraceChannel::record(Time when, double value)
{
    _samples.push_back(Sample{when, value});
}

double
TraceChannel::last() const
{
    if (_samples.empty())
        fatal("TraceChannel '%s': last() on empty channel", _name.c_str());
    return _samples.back().value;
}

double
TraceChannel::mean() const
{
    if (_samples.empty())
        return 0.0;
    double sum = 0.0;
    for (const auto &s : _samples)
        sum += s.value;
    return sum / static_cast<double>(_samples.size());
}

double
TraceChannel::min() const
{
    double m = std::numeric_limits<double>::infinity();
    for (const auto &s : _samples)
        m = std::min(m, s.value);
    return m;
}

double
TraceChannel::max() const
{
    double m = -std::numeric_limits<double>::infinity();
    for (const auto &s : _samples)
        m = std::max(m, s.value);
    return m;
}

double
TraceChannel::timeWeightedMean() const
{
    if (_samples.size() < 2)
        return mean();
    double weighted = 0.0;
    double span = 0.0;
    for (std::size_t i = 0; i + 1 < _samples.size(); ++i) {
        double dt = (_samples[i + 1].when - _samples[i].when).toSec();
        weighted += _samples[i].value * dt;
        span += dt;
    }
    return span > 0.0 ? weighted / span : mean();
}

Time
TraceChannel::timeAtOrAbove(double threshold) const
{
    Time total = Time::zero();
    for (std::size_t i = 0; i + 1 < _samples.size(); ++i) {
        if (_samples[i].value >= threshold)
            total += _samples[i + 1].when - _samples[i].when;
    }
    return total;
}

TraceChannel
TraceChannel::since(Time start) const
{
    TraceChannel out(_name);
    for (const auto &s : _samples) {
        if (s.when >= start)
            out.record(s.when, s.value);
    }
    return out;
}

std::vector<double>
TraceChannel::values() const
{
    std::vector<double> out;
    out.reserve(_samples.size());
    for (const auto &s : _samples)
        out.push_back(s.value);
    return out;
}

TraceChannel &
Trace::channel(const std::string &channel_name)
{
    auto it = _channels.find(channel_name);
    if (it == _channels.end())
        it = _channels.emplace(channel_name, TraceChannel(channel_name))
                 .first;
    return it->second;
}

const TraceChannel &
Trace::channel(const std::string &channel_name) const
{
    auto it = _channels.find(channel_name);
    if (it == _channels.end())
        fatal("Trace: unknown channel '%s'", channel_name.c_str());
    return it->second;
}

bool
Trace::hasChannel(const std::string &channel_name) const
{
    return _channels.count(channel_name) > 0;
}

void
Trace::record(const std::string &channel_name, Time when, double value)
{
    channel(channel_name).record(when, value);
}

std::vector<std::string>
Trace::channelNames() const
{
    std::vector<std::string> names;
    names.reserve(_channels.size());
    for (const auto &kv : _channels)
        names.push_back(kv.first);
    return names;
}

std::string
Trace::toCsv() const
{
    std::string out = "channel,time_s,value\n";
    for (const auto &kv : _channels) {
        for (const auto &s : kv.second.samples()) {
            out += strfmt("%s,%.6f,%.9g\n", kv.first.c_str(),
                          s.when.toSec(), s.value);
        }
    }
    return out;
}

void
Trace::writeCsv(const std::string &path) const
{
    std::ofstream f(path);
    if (!f)
        fatal("Trace: cannot open '%s' for writing", path.c_str());
    f << toCsv();
}

void
Trace::clear()
{
    _channels.clear();
}

} // namespace pvar
