/**
 * @file
 * LG G5 (Snapdragon 820) model — declarative spec.
 *
 * 14 nm FinFET, 2 performance + 2 efficiency Kryo cores. Two
 * behaviours the paper documents are specific to this phone:
 *
 *  - neither binning information nor voltage tables are exposed
 *    (per-die fused tables here, VfSource::FusedPerDie), and
 *  - the OS throttles the CPU on *input voltage*: powered from a
 *    Monsoon at the battery's nominal 3.85 V it benchmarks ~20%
 *    slower than on its own battery; 4.4 V restores parity (Fig 10).
 */

#include "device/catalog.hh"

#include "device/registry.hh"
#include "silicon/process_node.hh"

namespace pvar
{

namespace
{

VoltageBinningConfig
sd820Fusing(std::initializer_list<double> ladder_mhz)
{
    VoltageBinningConfig cfg;
    for (double f : ladder_mhz)
        cfg.frequencyLadder.push_back(MegaHertz(f));
    cfg.guardBand = 0.025;
    cfg.vCeiling = Volts(1.10);
    cfg.vFloor = Volts(0.55);
    return cfg;
}

} // namespace

DeviceSpec
lgG5Spec()
{
    DeviceSpec spec;
    spec.model = "LG G5";
    spec.socName = "SD-820";
    spec.silicon = node14nmFinFET();

    spec.package.dieCapacitance = 2.2;
    spec.package.socCapacitance = 24.0;
    spec.package.batteryCapacitance = 48.0;
    spec.package.caseCapacitance = 75.0;
    spec.package.dieToSoc = 0.24;
    spec.package.socToCase = 0.36;
    spec.package.socToBattery = 0.10;
    spec.package.batteryToCase = 0.15;
    spec.package.caseToAmbient = 0.27;

    ClusterSpec perf;
    perf.name = "perf";
    perf.coreType.name = "Kryo-perf";
    perf.coreType.sizeFactor = 2.40;
    perf.coreType.cyclesPerIteration = 1.9e9;
    perf.coreCount = 2;
    perf.source = VfSource::FusedPerDie;
    perf.binning =
        sd820Fusing({307, 556, 825, 1113, 1401, 1593, 1824, 2150});

    ClusterSpec eff;
    eff.name = "eff";
    eff.coreType.name = "Kryo-eff";
    eff.coreType.sizeFactor = 1.50;
    eff.coreType.cyclesPerIteration = 2.1e9;
    eff.coreCount = 2;
    eff.source = VfSource::FusedPerDie;
    eff.binning = sd820Fusing({307, 556, 825, 1113, 1363, 1593});

    spec.clusters = {perf, eff};

    spec.uncoreActive = Watts(0.26);
    spec.uncoreSuspended = Watts(0.012);

    spec.sensor.period = Time::msec(100);
    spec.sensor.quantum = 1.0;
    spec.sensor.noiseSigma = 0.2;

    spec.thermalGov.trips = {
        TripPoint{Celsius(66), Celsius(63), MegaHertz(1824)},
        TripPoint{Celsius(69), Celsius(66), MegaHertz(1593)},
        TripPoint{Celsius(74), Celsius(71), MegaHertz(1401)},
        TripPoint{Celsius(77), Celsius(74), MegaHertz(1113)},
    };
    spec.thermalGov.pollPeriod = Time::msec(250);

    spec.hasRbcpr = true;
    spec.rbcpr.baseRecoup = 0.012;
    spec.rbcpr.leakGain = 0.004;
    spec.rbcpr.speedGain = 0.18;
    spec.rbcpr.tempGain = 0.00012;
    spec.rbcpr.maxRecoup = 0.030;

    // The Fig 10 anomaly: cap engages below 4.0 V on the rail.
    spec.hasInputVoltageThrottle = true;
    spec.inputThrottle.engageBelow = Volts(3.88);
    spec.inputThrottle.releaseAbove = Volts(3.98);
    spec.inputThrottle.cap = MegaHertz(1593);
    spec.inputThrottle.pollPeriod = Time::msec(500);

    spec.backgroundNoiseMean = 0.008; // residual kernel activity
    spec.backgroundNoisePeriod = Time::sec(15);
    spec.boardActive = Watts(0.11);
    spec.pmicEfficiency = 0.89;

    spec.battery.capacityWh = 10.8; // 2800 mAh
    spec.battery.internalResistance = 0.07;
    spec.battery.nominal = Volts(3.85);
    spec.battery.vFull = Volts(4.40); // the G5 ships a 4.4 V cell

    return spec;
}

DeviceConfig
lgG5Config()
{
    return resolveDeviceConfig(lgG5Spec(), 0);
}

std::unique_ptr<Device>
makeLgG5(const UnitCorner &corner)
{
    return buildDevice(DeviceRegistry::builtin().at("SD-820").spec,
                       corner);
}

} // namespace pvar
