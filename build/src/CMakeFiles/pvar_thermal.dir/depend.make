# Empty dependencies file for pvar_thermal.
# This may be replaced when dependencies are built.
