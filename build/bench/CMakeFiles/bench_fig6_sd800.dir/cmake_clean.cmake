file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_sd800.dir/bench_fig6_sd800.cc.o"
  "CMakeFiles/bench_fig6_sd800.dir/bench_fig6_sd800.cc.o.d"
  "bench_fig6_sd800"
  "bench_fig6_sd800.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_sd800.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
