#!/usr/bin/env bash
# Full verification sweep: configure, build (warnings as errors), run
# the test suite, replay a pinned chaos plan (fault injection), soak
# the service under syscall-level fault injection (pvar_chaos), run
# the thread-pool/protocol tests under ThreadSanitizer plus the
# service/store tests under AddressSanitizer, and execute every bench
# binary's shape checks.
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -G Ninja -DPVAR_WERROR=ON
cmake --build build
ctest --test-dir build --output-on-failure -j"$(nproc)"

# Spec-layer round trip: the registry serialized to a fleet file must
# run the study protocol end-to-end, as must the shipped example.
./build/pvar_study --list-devices >/dev/null
./build/pvar_study --fleet examples/custom_fleet.json \
    --iterations 1 --quiet >/dev/null

# Service smoke: start pvar_served on an ephemeral loopback port, hit
# every endpoint, prove POST /study answers byte-for-byte what the CLI
# prints, prove the second identical request was served from the
# cache, and shut down cleanly on SIGTERM.
service_smoke() {
    local served=$1 study=$2 tmp
    tmp=$(mktemp -d)
    "$served" --port 0 --port-file "$tmp/port" --iterations 1 \
        --quiet & local pid=$!
    for _ in $(seq 100); do [ -s "$tmp/port" ] && break; sleep 0.1; done
    local port; port=$(cat "$tmp/port")
    curl -sf "http://127.0.0.1:$port/healthz" >/dev/null
    curl -sf "http://127.0.0.1:$port/devices" >/dev/null
    curl -sf -X POST --data-binary @examples/custom_fleet.json \
        "http://127.0.0.1:$port/study" -o "$tmp/study1.json"
    curl -sf -X POST --data-binary @examples/custom_fleet.json \
        "http://127.0.0.1:$port/study" -o "$tmp/study2.json"
    "$study" --fleet examples/custom_fleet.json --iterations 1 \
        --json --quiet --output "$tmp/cli.json"
    cmp "$tmp/study1.json" "$tmp/cli.json"
    cmp "$tmp/study1.json" "$tmp/study2.json"
    curl -sf "http://127.0.0.1:$port/healthz" -o "$tmp/health.json"
    python3 - "$tmp/health.json" <<'EOF'
import json, sys
h = json.load(open(sys.argv[1]))
cache = h["cache"]
assert cache["hits"] >= cache["misses"] > 0, cache
EOF
    kill -TERM "$pid"
    wait "$pid"
    rm -rf "$tmp"
}
service_smoke ./build/pvar_served ./build/pvar_study

# Kill-recovery: SIGKILL pvar_served mid-study, restart it on the same
# --cache-dir, and prove (a) the repeated POST /study is byte-identical
# to the CLI, (b) it was served from the durable store (no
# recomputation), and (c) the log survived the crash intact (storectl
# verify re-reads every record through the checksummed path).
kill_recovery() {
    local served=$1 study=$2 storectl=$3 tmp
    tmp=$(mktemp -d)
    "$served" --port 0 --port-file "$tmp/port" --iterations 1 \
        --cache-dir "$tmp/store" --quiet & local pid=$!
    for _ in $(seq 100); do [ -s "$tmp/port" ] && break; sleep 0.1; done
    local port; port=$(cat "$tmp/port")
    # Warm the store with a completed study, then die mid-request: the
    # kill lands while the second (uncached) study is computing, so the
    # process goes down with the log open for appends.
    curl -sf -X POST --data-binary \
        '{"device": "SD-805:unit-b", "iterations": 1}' \
        "http://127.0.0.1:$port/study" -o "$tmp/before.json"
    curl -sf -X POST --data-binary @examples/custom_fleet.json \
        "http://127.0.0.1:$port/study" -o /dev/null &
    local curl_pid=$!
    sleep 0.3
    kill -KILL "$pid"
    wait "$pid" 2>/dev/null || true
    wait "$curl_pid" 2>/dev/null || true

    # 0 = clean; 2 = torn tail truncated at open, which is legitimate
    # SIGKILL recovery. 1 (undecodable surviving records) stays fatal.
    local rc=0
    "$storectl" verify --cache-dir "$tmp/store" --quiet || rc=$?
    [ "$rc" -eq 0 ] || [ "$rc" -eq 2 ]

    # Restart on the same directory: the repeated request must come
    # back byte-identical, answered from the store.
    "$served" --port 0 --port-file "$tmp/port2" --iterations 1 \
        --cache-dir "$tmp/store" --quiet & pid=$!
    for _ in $(seq 100); do [ -s "$tmp/port2" ] && break; sleep 0.1; done
    port=$(cat "$tmp/port2")
    curl -sf -X POST --data-binary \
        '{"device": "SD-805:unit-b", "iterations": 1}' \
        "http://127.0.0.1:$port/study" -o "$tmp/after.json"
    cmp "$tmp/before.json" "$tmp/after.json"
    "$study" --device SD-805:unit-b --iterations 1 --json --quiet \
        --output "$tmp/cli.json"
    cmp "$tmp/after.json" "$tmp/cli.json"
    curl -sf "http://127.0.0.1:$port/healthz" -o "$tmp/health.json"
    python3 - "$tmp/health.json" <<'EOF'
import json, sys
h = json.load(open(sys.argv[1]))
store = h["store"]
assert store["hits"] > 0 and store["misses"] == 0, store
assert store["records"] >= 2, store
EOF
    kill -TERM "$pid"
    wait "$pid"
    rm -rf "$tmp"
}
kill_recovery ./build/pvar_served ./build/pvar_study ./build/pvar_storectl

# Chaos replay: a pinned fault plan must reproduce the same faulted
# study byte-for-byte at any jobs count (retries, quarantine and all),
# and an injected store I/O fault must degrade persistence gracefully
# without changing a single result byte.
chaos() {
    local study=$1 storectl=$2 tmp
    tmp=$(mktemp -d)
    cat > "$tmp/chaos.json" <<'EOF'
{"seed": 20250811, "rules": [
  {"site": "experiment.run", "kind": "transient", "probability": 0.35},
  {"site": "thermabox.regulate", "kind": "transient",
   "probability": 0.0005}
]}
EOF
    "$study" --soc SD-805 --iterations 1 --jobs 1 --json --quiet \
        --fault-plan "$tmp/chaos.json" --output "$tmp/chaos1.json" \
        2> "$tmp/chaos1.err"
    "$study" --soc SD-805 --iterations 1 --jobs 4 --json --quiet \
        --fault-plan "$tmp/chaos.json" --output "$tmp/chaos4.json"
    cmp "$tmp/chaos1.json" "$tmp/chaos4.json"
    # The plan must actually have bitten: at least one retry logged.
    grep -q 'retrying' "$tmp/chaos1.err"

    # Degraded store: every append fails, so the run computes
    # everything, persists nothing, and says so loudly — while the
    # result bytes stay identical to an uncached reference run.
    cat > "$tmp/store_fault.json" <<'EOF'
{"seed": 1, "rules": [
  {"site": "store.append", "kind": "io", "every": 1}
]}
EOF
    "$study" --device SD-805:unit-b --iterations 1 --json --quiet \
        --output "$tmp/ref.json"
    "$study" --device SD-805:unit-b --iterations 1 --json --quiet \
        --cache-dir "$tmp/store" \
        --fault-plan "$tmp/store_fault.json" \
        --output "$tmp/faulted.json" 2> "$tmp/faulted.err"
    cmp "$tmp/ref.json" "$tmp/faulted.json"
    grep -q 'degraded' "$tmp/faulted.err"
    local rc=0
    "$storectl" verify --cache-dir "$tmp/store" --quiet || rc=$?
    [ "$rc" -eq 2 ] # degraded marker => distinct exit code

    # A clean rerun persists, clears the marker, and still matches.
    "$study" --device SD-805:unit-b --iterations 1 --json --quiet \
        --cache-dir "$tmp/store" --output "$tmp/clean.json"
    cmp "$tmp/ref.json" "$tmp/clean.json"
    "$storectl" verify --cache-dir "$tmp/store" --quiet
    rm -rf "$tmp"
}
chaos ./build/pvar_study ./build/pvar_storectl

# Solver equivalence: the analytic fast path must reproduce the full
# stepped study within its accuracy contract — per-unit scores and
# energies to 1%, derived variation percentages to one point. (The
# two solvers agree to tolerance, not bit-for-bit: `stepped` remains
# the bit-identity reference.)
solver_equivalence() {
    local study=$1 tmp
    tmp=$(mktemp -d)
    "$study" --iterations 1 --jobs 1 --solver stepped --json --quiet \
        --output "$tmp/stepped.json"
    "$study" --iterations 1 --jobs 1 --solver fast --json --quiet \
        --output "$tmp/fast.json"
    python3 - "$tmp/stepped.json" "$tmp/fast.json" <<'EOF'
import json, sys
stepped = json.load(open(sys.argv[1]))
fast = json.load(open(sys.argv[2]))
assert len(stepped) == len(fast), (len(stepped), len(fast))
for s, f in zip(stepped, fast):
    assert s["soc"] == f["soc"]
    for key in ("perf_variation_percent", "energy_variation_percent",
                "fixed_perf_spread_percent"):
        assert abs(s[key] - f[key]) <= 1.0, (s["soc"], key, s[key], f[key])
    assert s["quarantined_units"] == f["quarantined_units"], s["soc"]
    for su, fu in zip(s["units"], f["units"]):
        assert su["unit"] == fu["unit"]
        for key in ("mean_score", "mean_unconstrained_energy_j",
                    "mean_fixed_energy_j", "mean_fixed_score"):
            rel = abs(su[key] - fu[key]) / max(abs(su[key]), 1e-9)
            assert rel <= 0.01, (s["soc"], su["unit"], key,
                                 su[key], fu[key])
print("solver equivalence ok:", ", ".join(s["soc"] for s in stepped))
EOF
    rm -rf "$tmp"
}
solver_equivalence ./build/pvar_study

# Batch identity: the die-cohort engine is a pure throughput knob.
# A full fast-solver study and a stepped reference study must emit
# byte-identical reports at width 1 and width 16 — per-die results
# may not depend on how many dies advance in lockstep.
batch_identity() {
    local study=$1 tmp
    tmp=$(mktemp -d)
    "$study" --iterations 1 --jobs 2 --solver fast --batch 1 \
        --json --quiet --output "$tmp/fast_b1.json"
    "$study" --iterations 1 --jobs 2 --solver fast --batch 16 \
        --json --quiet --output "$tmp/fast_b16.json"
    cmp "$tmp/fast_b1.json" "$tmp/fast_b16.json"
    "$study" --soc SD-805 --iterations 1 --jobs 2 --solver stepped \
        --batch 1 --json --quiet --output "$tmp/stepped_b1.json"
    "$study" --soc SD-805 --iterations 1 --jobs 2 --solver stepped \
        --batch 16 --json --quiet --output "$tmp/stepped_b16.json"
    cmp "$tmp/stepped_b1.json" "$tmp/stepped_b16.json"
    rm -rf "$tmp"
}
batch_identity ./build/pvar_study

# Crowd identity: the stratified sampler must be a pure function of
# (population seed, strata, rounds) — byte-identical reports at any
# jobs count and cohort width — and a live-point-warm rerun on the
# same store must reproduce the cold bytes exactly while storectl
# still validates every checkpoint through the digested codec path.
crowd_identity() {
    local study=$1 storectl=$2 tmp
    tmp=$(mktemp -d)
    "$study" --crowd 256 --strata 4 --jobs 1 --batch 1 --quiet \
        --output "$tmp/j1.json"
    "$study" --crowd 256 --strata 4 --jobs 4 --batch 1 --quiet \
        --output "$tmp/j4.json"
    "$study" --crowd 256 --strata 4 --jobs 2 --batch 16 --quiet \
        --output "$tmp/b16.json"
    cmp "$tmp/j1.json" "$tmp/j4.json"
    cmp "$tmp/j1.json" "$tmp/b16.json"
    # Cold run captures one live point per sampled die; the warm rerun
    # restores from them and must not change a single output byte.
    "$study" --crowd 256 --strata 4 --quiet \
        --cache-dir "$tmp/store" --output "$tmp/cold.json"
    "$study" --crowd 256 --strata 4 --quiet \
        --cache-dir "$tmp/store" --output "$tmp/warm.json"
    cmp "$tmp/j1.json" "$tmp/cold.json"
    cmp "$tmp/cold.json" "$tmp/warm.json"
    "$storectl" verify --cache-dir "$tmp/store" --quiet
    "$storectl" stats --cache-dir "$tmp/store" --quiet \
        > "$tmp/stats.json"
    python3 - "$tmp/stats.json" <<'EOF'
import json, sys
s = json.load(open(sys.argv[1]))
assert s["live_point_records"] == 16, s
assert s["live_point_bytes"] > 0, s
EOF
    rm -rf "$tmp"
}
crowd_identity ./build/pvar_study ./build/pvar_storectl

# Service under load: the native generator drives a live server over
# keep-alive connections — zero transport errors, zero non-2xx, a
# sampled /study response byte-identical to the CLI, and (in the
# normal tree, where timing is honest) keep-alive throughput strictly
# above the one-connection-per-request baseline.
service_load() {
    local served=$1 loadgen=$2 study=$3 assert_speedup=$4 tmp
    tmp=$(mktemp -d)
    "$served" --port 0 --port-file "$tmp/port" --iterations 1 \
        --quiet & local pid=$!
    for _ in $(seq 100); do [ -s "$tmp/port" ] && break; sleep 0.1; done
    local port; port=$(cat "$tmp/port")
    # Closed-loop /study: every response is a full study; the sampled
    # body must be exactly what pvar_study prints.
    "$loadgen" --port "$port" --path /study \
        --body '{"device": "SD-805:unit-b", "iterations": 1}' \
        --connections 2 --duration-ms 800 --warmup-ms 100 \
        --json "$tmp/study.json" --sample "$tmp/sample.json" --quiet
    "$study" --device SD-805:unit-b --iterations 1 --json --quiet \
        --output "$tmp/cli.json"
    cmp "$tmp/sample.json" "$tmp/cli.json"
    # Keep-alive versus reconnect-per-request on the cheap endpoint.
    # Interleaved best-of-3 per mode: on a 1-core box a background
    # blip can swing one short run by more than the keep-alive margin.
    local i
    for i in 1 2 3; do
        "$loadgen" --port "$port" --path /devices --connections 2 \
            --duration-ms 600 --warmup-ms 100 \
            --json "$tmp/keep.$i.json" --quiet
        "$loadgen" --port "$port" --path /devices --connections 2 \
            --duration-ms 600 --warmup-ms 100 --close \
            --json "$tmp/close.$i.json" --quiet
    done
    kill -TERM "$pid"
    wait "$pid"
    python3 - "$tmp" "$assert_speedup" <<'EOF'
import json, sys
tmp = sys.argv[1]
study = json.load(open(tmp + "/study.json"))
keeps = [json.load(open("%s/keep.%d.json" % (tmp, i))) for i in (1, 2, 3)]
closes = [json.load(open("%s/close.%d.json" % (tmp, i))) for i in (1, 2, 3)]
for r in [study] + keeps + closes:
    assert r["errors"] == 0 and r["non_2xx"] == 0, r
    assert r["requests"] > 0, r
assert study["keepalive_reuses"] > 0, study
keep = max(r["rps"] for r in keeps)
close = max(r["rps"] for r in closes)
if sys.argv[2] == "1":
    assert keep > close, (keep, close)
EOF
    rm -rf "$tmp"
}
service_load ./build/pvar_served ./build/pvar_loadgen \
    ./build/pvar_study 1

# Chaos soak: the service under syscall-level fault injection
# (EMFILE/ECONNABORTED accepts, short reads/writes, resets, EPIPE,
# EINTR, ENOSPC, fsync EIO) followed by a SIGKILL mid-traffic. Each
# seed must uphold every invariant: no crash, 2xx bodies byte-equal
# to the CLI oracle, non-2xx only as deliberate sheds, a coherent
# /healthz, and a store that recovers with zero bad records. Short
# here; EXPERIMENTS.md documents the long soak.
chaos_soak() {
    local chaos=$1 seeds=$2 duration=$3
    "$chaos" --seeds "$seeds" --duration "$duration"
}
chaos_soak ./build/pvar_chaos 3 2

# ThreadSanitizer pass over the parallel runner: the pool unit tests,
# the protocol determinism tests, the spec/JSON layer feeding the
# parallel scheduler, the service (acceptor + workers + cache under
# concurrent requests), and real multi-worker study runs (builtin SoC
# and JSON-defined fleet).
cmake -B build-tsan -G Ninja -DPVAR_SANITIZE=thread
cmake --build build-tsan \
    --target test_parallel test_protocol test_json test_spec \
        test_service test_eventloop test_store test_fault pvar_study \
        pvar_served pvar_loadgen pvar_storectl pvar_chaos
./build-tsan/tests/test_parallel
./build-tsan/tests/test_eventloop
./build-tsan/tests/test_fault
./build-tsan/tests/test_protocol
./build-tsan/tests/test_json
./build-tsan/tests/test_spec
./build-tsan/tests/test_service
./build-tsan/tests/test_store
./build-tsan/pvar_study --soc SD-805 --iterations 1 --jobs 4 --quiet
./build-tsan/pvar_study --fleet examples/custom_fleet.json \
    --iterations 1 --jobs 4 --quiet
# Durable store under the parallel scheduler: every worker appends
# through the store mutex while the study fans out.
tsan_store=$(mktemp -d)
./build-tsan/pvar_study --soc SD-805 --iterations 1 --jobs 4 --quiet \
    --cache-dir "$tsan_store"
./build-tsan/pvar_study --soc SD-805 --iterations 1 --jobs 4 --quiet \
    --cache-dir "$tsan_store"
rm -rf "$tsan_store"
service_smoke ./build-tsan/pvar_served ./build-tsan/pvar_study
kill_recovery ./build-tsan/pvar_served ./build-tsan/pvar_study \
    ./build-tsan/pvar_storectl
chaos ./build-tsan/pvar_study ./build-tsan/pvar_storectl
solver_equivalence ./build-tsan/pvar_study
batch_identity ./build-tsan/pvar_study
crowd_identity ./build-tsan/pvar_study ./build-tsan/pvar_storectl
service_load ./build-tsan/pvar_served ./build-tsan/pvar_loadgen \
    ./build-tsan/pvar_study 0
chaos_soak ./build-tsan/pvar_chaos 2 2

# AddressSanitizer pass over the I/O-heavy layers: the event loop's
# buffer handling under short reads/writes, the record log's recovery
# paths, and the whole service while a chaos soak injects syscall
# faults into every transport and persistence edge.
cmake -B build-asan -G Ninja -DPVAR_SANITIZE=address
cmake --build build-asan \
    --target test_eventloop test_store test_fault test_service \
        pvar_chaos
./build-asan/tests/test_eventloop
./build-asan/tests/test_store
./build-asan/tests/test_fault
./build-asan/tests/test_service
chaos_soak ./build-asan/pvar_chaos 2 2

fail=0
for b in build/bench/bench_*; do
    [ -f "$b" ] && [ -x "$b" ] || continue
    name=$(basename "$b")
    out=$("$b" 2>&1) || { echo "FAILED to run: $name"; fail=1; continue; }
    misses=$(grep -c 'MISS' <<<"$out" || true)
    if [ "$misses" != "0" ]; then
        echo "SHAPE CHECK MISS in $name:"
        grep 'MISS' <<<"$out"
        fail=1
    else
        echo "ok: $name"
    fi
done
exit $fail
