
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/accubench/accubench.cc" "src/CMakeFiles/pvar_accubench.dir/accubench/accubench.cc.o" "gcc" "src/CMakeFiles/pvar_accubench.dir/accubench/accubench.cc.o.d"
  "/root/repo/src/accubench/ambient_estimator.cc" "src/CMakeFiles/pvar_accubench.dir/accubench/ambient_estimator.cc.o" "gcc" "src/CMakeFiles/pvar_accubench.dir/accubench/ambient_estimator.cc.o.d"
  "/root/repo/src/accubench/bin_clustering.cc" "src/CMakeFiles/pvar_accubench.dir/accubench/bin_clustering.cc.o" "gcc" "src/CMakeFiles/pvar_accubench.dir/accubench/bin_clustering.cc.o.d"
  "/root/repo/src/accubench/crowd.cc" "src/CMakeFiles/pvar_accubench.dir/accubench/crowd.cc.o" "gcc" "src/CMakeFiles/pvar_accubench.dir/accubench/crowd.cc.o.d"
  "/root/repo/src/accubench/experiment.cc" "src/CMakeFiles/pvar_accubench.dir/accubench/experiment.cc.o" "gcc" "src/CMakeFiles/pvar_accubench.dir/accubench/experiment.cc.o.d"
  "/root/repo/src/accubench/lower_bound.cc" "src/CMakeFiles/pvar_accubench.dir/accubench/lower_bound.cc.o" "gcc" "src/CMakeFiles/pvar_accubench.dir/accubench/lower_bound.cc.o.d"
  "/root/repo/src/accubench/phase_windows.cc" "src/CMakeFiles/pvar_accubench.dir/accubench/phase_windows.cc.o" "gcc" "src/CMakeFiles/pvar_accubench.dir/accubench/phase_windows.cc.o.d"
  "/root/repo/src/accubench/protocol.cc" "src/CMakeFiles/pvar_accubench.dir/accubench/protocol.cc.o" "gcc" "src/CMakeFiles/pvar_accubench.dir/accubench/protocol.cc.o.d"
  "/root/repo/src/accubench/ranking.cc" "src/CMakeFiles/pvar_accubench.dir/accubench/ranking.cc.o" "gcc" "src/CMakeFiles/pvar_accubench.dir/accubench/ranking.cc.o.d"
  "/root/repo/src/accubench/result.cc" "src/CMakeFiles/pvar_accubench.dir/accubench/result.cc.o" "gcc" "src/CMakeFiles/pvar_accubench.dir/accubench/result.cc.o.d"
  "/root/repo/src/accubench/throttle_analysis.cc" "src/CMakeFiles/pvar_accubench.dir/accubench/throttle_analysis.cc.o" "gcc" "src/CMakeFiles/pvar_accubench.dir/accubench/throttle_analysis.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/pvar_device.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pvar_thermabox.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pvar_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pvar_soc.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pvar_silicon.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pvar_power.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pvar_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pvar_thermal.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pvar_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
