/**
 * @file
 * Workload engine: applies load to an SoC and accrues iterations.
 */

#ifndef PVAR_WORKLOAD_ENGINE_HH
#define PVAR_WORKLOAD_ENGINE_HH

#include <vector>

#include "sim/bytes.hh"
#include "soc/soc.hh"
#include "sim/time.hh"
#include "workload/workload.hh"

namespace pvar
{

/**
 * Drives cluster utilization while a workload runs, and integrates
 * the iteration count delivered at the actually-granted frequencies.
 */
class WorkloadEngine
{
  public:
    /** @param soc the SoC to load; must outlive the engine. */
    explicit WorkloadEngine(Soc *soc);

    /** Begin running `w`; idempotent if already running. */
    void start(const CpuIntensiveWorkload &w);

    /** Stop the workload; cluster utilizations drop to idle. */
    void stop();

    bool running() const { return _running; }

    /**
     * True while a duty-cycled workload runs. Burst edges fall inside
     * a long analytic jump, so event-driven stepping must stay on the
     * base cadence whenever this holds.
     */
    bool bursty() const
    {
        return _running && _workload.burstPeriod > Time::zero();
    }

    /**
     * Advance one step: apply utilization and accrue iterations.
     * Call once per simulator tick, before power is computed.
     */
    void tick(Time dt);

    /**
     * Fraction of CPU cycles stolen by background activity (0..1).
     * Stolen cycles still burn power (the cores stay busy) but do not
     * produce benchmark iterations — the paper's residual-noise model.
     */
    void setBackgroundSteal(double fraction);
    double backgroundSteal() const { return _backgroundSteal; }

    /** Iterations completed since the last resetIterations(). */
    double iterations() const { return _iterations; }

    /** Per-cluster iteration counts (same order as soc clusters). */
    const std::vector<double> &clusterIterations() const
    {
        return _clusterIterations;
    }

    /** Zero the iteration counters (start of a scored phase). */
    void resetIterations();

    /** @name Live-point state (run flag, workload, counters). @{ */
    void
    saveState(ByteWriter &w) const
    {
        w.u8(_running ? 1 : 0);
        w.str(_workload.name);
        w.f64(_workload.utilization);
        w.i64(_workload.burstPeriod.toUsec());
        w.f64(_workload.burstDuty);
        w.f64(_iterations);
        w.f64(_backgroundSteal);
        w.i64(_phaseClock.toUsec());
        w.u32(static_cast<std::uint32_t>(_clusterIterations.size()));
        for (double it : _clusterIterations)
            w.f64(it);
    }

    bool
    loadState(ByteReader &r)
    {
        std::uint8_t running = 0;
        std::int64_t burst_period = 0, phase_clock = 0;
        std::uint32_t n_clusters = 0;
        if (!r.u8(running) || running > 1 || !r.str(_workload.name) ||
            !r.f64(_workload.utilization) || !r.i64(burst_period) ||
            !r.f64(_workload.burstDuty) || !r.f64(_iterations) ||
            !r.f64(_backgroundSteal) || !r.i64(phase_clock) ||
            !r.u32(n_clusters) ||
            n_clusters != _clusterIterations.size())
            return false;
        for (double &it : _clusterIterations)
            if (!r.f64(it))
                return false;
        _running = running != 0;
        _workload.burstPeriod = Time::usec(burst_period);
        _phaseClock = Time::usec(phase_clock);
        return true;
    }
    /** @} */

  private:
    Soc *_soc;
    bool _running;
    CpuIntensiveWorkload _workload;
    double _iterations;
    double _backgroundSteal;
    Time _phaseClock;
    std::vector<double> _clusterIterations;
};

} // namespace pvar

#endif // PVAR_WORKLOAD_ENGINE_HH
