/**
 * @file
 * Input-voltage (non-thermal) throttling.
 *
 * The LG G5 throttles its CPU when the battery-rail voltage is low —
 * the anomaly of paper Fig 10: powered from a Monsoon programmed to
 * the battery's *nominal* 3.85 V, the phone runs ~20% slower than on
 * its own (fresher, higher-voltage) battery; programming 4.4 V
 * restores full performance. The mechanism protects against brownout
 * on aged cells, and is the same family of behaviour as the iPhone
 * slowdowns the paper's discussion cites.
 */

#ifndef PVAR_SOC_INPUT_VOLTAGE_THROTTLE_HH
#define PVAR_SOC_INPUT_VOLTAGE_THROTTLE_HH

#include "sim/bytes.hh"
#include "sim/time.hh"
#include "sim/units.hh"

namespace pvar
{

/** Rule configuration. */
struct InputVoltageThrottleParams
{
    /** Engage when the sampled rail drops below this. */
    Volts engageBelow{4.00};

    /** Release when the rail rises above this (hysteresis). */
    Volts releaseAbove{4.10};

    /** Frequency cap while engaged. */
    MegaHertz cap{1593.0};

    /** Rail sampling period. */
    Time pollPeriod = Time::msec(500);
};

/**
 * The brownout-protection state machine.
 */
class InputVoltageThrottle
{
  public:
    explicit InputVoltageThrottle(const InputVoltageThrottleParams &params);

    /**
     * Sample the rail; a no-op between poll periods.
     */
    void update(Time now, Volts rail);

    /** True while the cap is engaged. */
    bool engaged() const { return _engaged; }

    /** Current cap, or infinity when released. */
    MegaHertz freqCap() const;

    void reset();

    const InputVoltageThrottleParams &params() const { return _params; }

    /** @name Live-point state (latch, poll clock). @{ */
    void
    saveState(ByteWriter &w) const
    {
        w.u8(_engaged ? 1 : 0);
        w.i64(_lastPoll.toUsec());
        w.u8(_primed ? 1 : 0);
    }

    bool
    loadState(ByteReader &r)
    {
        std::uint8_t engaged = 0, primed = 0;
        std::int64_t last_poll = 0;
        if (!r.u8(engaged) || engaged > 1 || !r.i64(last_poll) ||
            !r.u8(primed) || primed > 1)
            return false;
        _engaged = engaged != 0;
        _lastPoll = Time::usec(last_poll);
        _primed = primed != 0;
        return true;
    }
    /** @} */

  private:
    InputVoltageThrottleParams _params;
    bool _engaged;
    Time _lastPoll;
    bool _primed;
};

} // namespace pvar

#endif // PVAR_SOC_INPUT_VOLTAGE_THROTTLE_HH
