/**
 * @file
 * Time-series recording.
 *
 * Every figure in the paper is a time series or a statistic computed
 * from one. Trace is the single recording primitive: named channels of
 * (time, value) samples with CSV export and simple reductions.
 */

#ifndef PVAR_SIM_TRACE_HH
#define PVAR_SIM_TRACE_HH

#include <map>
#include <string>
#include <vector>

#include "sim/time.hh"

namespace pvar
{

/** One (time, value) observation. */
struct Sample
{
    Time when;
    double value;
};

/** A named sequence of observations. */
class TraceChannel
{
  public:
    explicit TraceChannel(std::string channel_name = "");

    const std::string &name() const { return _name; }

    void record(Time when, double value);

    const std::vector<Sample> &samples() const { return _samples; }
    bool empty() const { return _samples.empty(); }
    std::size_t size() const { return _samples.size(); }

    /** Last recorded value; fatal on an empty channel. */
    double last() const;

    /** Arithmetic mean of the values. */
    double mean() const;

    /** Minimum / maximum of the values. */
    double min() const;
    double max() const;

    /**
     * Time-weighted mean over the recorded span (each sample holds
     * until the next); equals mean() for uniformly spaced samples.
     */
    double timeWeightedMean() const;

    /**
     * Total time spent at values >= threshold (sample-and-hold).
     * This is the "time at temperature" metric of paper §IV-B.
     */
    Time timeAtOrAbove(double threshold) const;

    /** Keep only samples with when >= start (used to trim warmup). */
    TraceChannel since(Time start) const;

    /** Values only, discarding timestamps. */
    std::vector<double> values() const;

  private:
    std::string _name;
    std::vector<Sample> _samples;
};

/**
 * A bundle of named channels recorded during one run.
 */
class Trace
{
  public:
    /** Get or create a channel. */
    TraceChannel &channel(const std::string &channel_name);

    /** Lookup; fatal if missing (typo guard). */
    const TraceChannel &channel(const std::string &channel_name) const;

    bool hasChannel(const std::string &channel_name) const;

    /** Record into a channel, creating it on first use. */
    void record(const std::string &channel_name, Time when, double value);

    std::vector<std::string> channelNames() const;

    /**
     * Export all channels as CSV: one row per sample,
     * columns "channel,time_s,value".
     */
    std::string toCsv() const;

    /** Write toCsv() to a file; fatal on I/O error. */
    void writeCsv(const std::string &path) const;

    void clear();

  private:
    std::map<std::string, TraceChannel> _channels;
};

} // namespace pvar

#endif // PVAR_SIM_TRACE_HH
