file(REMOVE_RECURSE
  "libpvar_accubench.a"
)
