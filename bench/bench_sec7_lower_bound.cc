/**
 * @file
 * Regenerates paper §VII's third contribution: Table II's variation
 * numbers are *lower bounds*. With only 2-4 units per SoC, the
 * observed spread systematically underestimates the population
 * spread; this Monte-Carlo study over simulated fleets of increasing
 * size shows exactly how much headroom remains.
 */

#include <cstdio>

#include "sampling/lower_bound.hh"
#include "bench_util.hh"
#include "report/figure.hh"
#include "report/table.hh"

using namespace pvar;

int
main()
{
    benchQuiet();
    std::printf("%s", figureHeader(
        "SVII: observed variation is a lower bound",
        "a larger study may unearth that the full extent of the "
        "variation is greater than Table II reports").c_str());

    LowerBoundConfig cfg;
    cfg.socName = "SD-821";
    cfg.sampleSizes = {2, 3, 5, 8};
    cfg.replicates = 4;
    cfg.seed = 7;
    // Short phases keep the Monte-Carlo affordable; the spread
    // statistic only needs the relative ordering.
    cfg.accubench.warmupDuration = Time::minutes(2);
    cfg.accubench.workloadDuration = Time::minutes(3);

    auto points = sampleSizeStudy(cfg);

    Table t({"Fleet size n", "Mean observed spread", "Min", "Max"});
    BarFigure fig("Observed SD-821 performance spread vs fleet size",
                  "% spread");
    for (const auto &p : points) {
        t.addRow({std::to_string(p.sampleSize),
                  fmtPercent(p.meanSpreadPercent),
                  fmtPercent(p.minSpreadPercent),
                  fmtPercent(p.maxSpreadPercent)});
        fig.addBar("n=" + std::to_string(p.sampleSize),
                   p.meanSpreadPercent);
    }
    std::printf("%s\n%s", t.render().c_str(), fig.render(true).c_str());

    std::printf("\nSHAPE CHECK vs paper:\n");
    bool grows = true;
    for (std::size_t i = 0; i + 1 < points.size(); ++i)
        grows &= points[i].meanSpreadPercent <=
                 points[i + 1].meanSpreadPercent * 1.05;
    shapeCheck(grows,
               "observed spread grows with fleet size (small studies "
               "underestimate)");
    shapeCheck(points.back().meanSpreadPercent >
                   points[1].meanSpreadPercent * 1.2,
               "an 8-unit study reveals " +
                   fmtPercent(points.back().meanSpreadPercent) +
                   " where a paper-sized 3-unit study sees " +
                   fmtPercent(points[1].meanSpreadPercent));
    shapeCheck(points.front().meanSpreadPercent > 0.0,
               "even two devices expose variation (SVII: 'it only "
               "takes two devices')");
    return 0;
}
