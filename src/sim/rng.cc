#include "sim/rng.hh"

#include <cmath>

namespace pvar
{

namespace
{

/** splitmix64 step; used only to spread seeds across the xoshiro state. */
std::uint64_t
splitmix64(std::uint64_t &x)
{
    x += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(std::uint64_t seed) : _spare(0.0), _hasSpare(false)
{
    std::uint64_t x = seed;
    for (auto &s : _s)
        s = splitmix64(x);
}

std::uint64_t
Rng::next()
{
    const std::uint64_t result = rotl(_s[1] * 5, 7) * 9;
    const std::uint64_t t = _s[1] << 17;

    _s[2] ^= _s[0];
    _s[3] ^= _s[1];
    _s[1] ^= _s[2];
    _s[0] ^= _s[3];
    _s[2] ^= t;
    _s[3] = rotl(_s[3], 45);

    return result;
}

double
Rng::uniform()
{
    // 53 high bits -> double in [0, 1).
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double
Rng::uniform(double lo, double hi)
{
    return lo + (hi - lo) * uniform();
}

std::int64_t
Rng::uniformInt(std::int64_t lo, std::int64_t hi)
{
    auto span = static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<std::int64_t>(next() % span);
}

double
Rng::gaussian()
{
    if (_hasSpare) {
        _hasSpare = false;
        return _spare;
    }
    double u1 = 0.0;
    while (u1 <= 1e-300)
        u1 = uniform();
    double u2 = uniform();
    double mag = std::sqrt(-2.0 * std::log(u1));
    _spare = mag * std::sin(2.0 * M_PI * u2);
    _hasSpare = true;
    return mag * std::cos(2.0 * M_PI * u2);
}

double
Rng::gaussian(double mean, double sigma)
{
    return mean + sigma * gaussian();
}

double
Rng::lognormal(double mu, double sigma)
{
    return std::exp(gaussian(mu, sigma));
}

Rng
Rng::fork(std::uint64_t stream)
{
    // Mix the raw state with the stream label through splitmix to give
    // the child a seed uncorrelated with the parent's future output.
    std::uint64_t x = _s[0] ^ (stream * 0xd1342543de82ef95ULL);
    return Rng(splitmix64(x));
}

} // namespace pvar
