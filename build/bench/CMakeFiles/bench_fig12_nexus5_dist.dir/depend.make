# Empty dependencies file for bench_fig12_nexus5_dist.
# This may be replaced when dependencies are built.
