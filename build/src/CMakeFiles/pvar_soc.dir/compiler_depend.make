# Empty compiler generated dependencies file for pvar_soc.
# This may be replaced when dependencies are built.
