file(REMOVE_RECURSE
  "CMakeFiles/test_accubench.dir/test_accubench.cc.o"
  "CMakeFiles/test_accubench.dir/test_accubench.cc.o.d"
  "test_accubench"
  "test_accubench.pdb"
  "test_accubench[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_accubench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
