#include "device/fleet.hh"

#include <utility>

#include "sim/rng.hh"

namespace pvar
{

Fleet
nexus5Fleet()
{
    return buildFleet(DeviceRegistry::builtin().at("SD-800"));
}

Fleet
nexus6Fleet()
{
    return buildFleet(DeviceRegistry::builtin().at("SD-805"));
}

Fleet
nexus6pFleet()
{
    return buildFleet(DeviceRegistry::builtin().at("SD-810"));
}

Fleet
lgG5Fleet()
{
    return buildFleet(DeviceRegistry::builtin().at("SD-820"));
}

Fleet
pixelFleet()
{
    return buildFleet(DeviceRegistry::builtin().at("SD-821"));
}

Fleet
fleetForSoc(const std::string &soc_name)
{
    return buildFleet(DeviceRegistry::builtin().at(soc_name));
}

const std::vector<std::string> &
studySocNames()
{
    static const std::vector<std::string> names =
        DeviceRegistry::builtin().studySocNames();
    return names;
}

MegaHertz
fixedFrequencyForSoc(const std::string &soc_name)
{
    return DeviceRegistry::builtin().at(soc_name).fixedFrequency;
}

Volts
studyMonsoonVoltageForSoc(const std::string &soc_name)
{
    return DeviceRegistry::builtin().at(soc_name).monsoonVoltage;
}

std::unique_ptr<Device>
makeUnitForSoc(const std::string &soc_name, const UnitCorner &corner)
{
    return buildDevice(DeviceRegistry::builtin().at(soc_name).spec,
                       corner);
}

UnitCorner
sampleUnitCorner(Rng &rng, std::string id, double corner_sigma)
{
    UnitCorner corner;
    corner.id = std::move(id);
    // Draw order is part of the population's definition: corner
    // first, then the leakage residual.
    corner.corner = rng.gaussian(0.0, corner_sigma);
    corner.leakResidual = rng.gaussian(0.0, 0.3);
    return corner;
}

} // namespace pvar
