# Empty dependencies file for bench_fig9_sd821.
# This may be replaced when dependencies are built.
