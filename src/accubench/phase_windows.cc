#include "accubench/phase_windows.hh"

namespace pvar
{

std::vector<PhaseWindow>
phaseWindows(const Trace &trace)
{
    std::vector<PhaseWindow> out;
    if (!trace.hasChannel("phase"))
        return out;
    const auto &samples = trace.channel("phase").samples();
    if (samples.empty())
        return out;

    for (std::size_t i = 0; i < samples.size(); ++i) {
        PhaseWindow w;
        w.phase = static_cast<AccubenchPhase>(
            static_cast<int>(samples[i].value));
        w.begin = samples[i].when;
        w.end = i + 1 < samples.size() ? samples[i + 1].when
                                       : samples.back().when;
        out.push_back(w);
    }
    return out;
}

std::optional<PhaseWindow>
phaseWindow(const Trace &trace, AccubenchPhase phase, int occurrence)
{
    int seen = 0;
    for (const auto &w : phaseWindows(trace)) {
        if (w.phase != phase)
            continue;
        if (seen == occurrence)
            return w;
        ++seen;
    }
    return std::nullopt;
}

} // namespace pvar
