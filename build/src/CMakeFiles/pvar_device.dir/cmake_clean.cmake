file(REMOVE_RECURSE
  "CMakeFiles/pvar_device.dir/device/device.cc.o"
  "CMakeFiles/pvar_device.dir/device/device.cc.o.d"
  "CMakeFiles/pvar_device.dir/device/fleet.cc.o"
  "CMakeFiles/pvar_device.dir/device/fleet.cc.o.d"
  "CMakeFiles/pvar_device.dir/device/lgg5.cc.o"
  "CMakeFiles/pvar_device.dir/device/lgg5.cc.o.d"
  "CMakeFiles/pvar_device.dir/device/nexus5.cc.o"
  "CMakeFiles/pvar_device.dir/device/nexus5.cc.o.d"
  "CMakeFiles/pvar_device.dir/device/nexus6.cc.o"
  "CMakeFiles/pvar_device.dir/device/nexus6.cc.o.d"
  "CMakeFiles/pvar_device.dir/device/nexus6p.cc.o"
  "CMakeFiles/pvar_device.dir/device/nexus6p.cc.o.d"
  "CMakeFiles/pvar_device.dir/device/pixel.cc.o"
  "CMakeFiles/pvar_device.dir/device/pixel.cc.o.d"
  "CMakeFiles/pvar_device.dir/device/pixel2.cc.o"
  "CMakeFiles/pvar_device.dir/device/pixel2.cc.o.d"
  "libpvar_device.a"
  "libpvar_device.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pvar_device.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
