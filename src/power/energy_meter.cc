#include "power/energy_meter.hh"

namespace pvar
{

EnergyMeter::EnergyMeter()
    : _total(Joules(0.0)), _open(false), _openStart(Time::zero()),
      _openStartEnergy(Joules(0.0))
{
}

void
EnergyMeter::accumulate(Watts p, Time now, Time dt)
{
    (void)now;
    _total += p * dt;
}

void
EnergyMeter::beginSpan(const std::string &label, Time now)
{
    if (_open)
        endSpan(now);
    _open = true;
    _openLabel = label;
    _openStart = now;
    _openStartEnergy = _total;
}

void
EnergyMeter::endSpan(Time now)
{
    if (!_open)
        return;
    _spans.push_back(EnergySpan{_openLabel, _openStart, now,
                                _total - _openStartEnergy});
    _open = false;
}

Joules
EnergyMeter::energyOf(const std::string &label) const
{
    Joules sum(0.0);
    for (const auto &s : _spans) {
        if (s.label == label)
            sum += s.energy;
    }
    return sum;
}

void
EnergyMeter::reset()
{
    _total = Joules(0.0);
    _spans.clear();
    _open = false;
}

} // namespace pvar
