#include "accubench/protocol.hh"

#include <algorithm>
#include <memory>

#include "accubench/batch.hh"
#include "fault/fault.hh"
#include "sim/logging.hh"
#include "sim/parallel.hh"
#include "sim/strfmt.hh"
#include "stats/summary.hh"

namespace pvar
{

namespace
{

/**
 * One schedulable experiment: a (unit, mode) pair. The device is
 * identified by registry entry and unit index and constructed inside
 * the task, so concurrent tasks never share object state.
 */
struct ExperimentTask
{
    const RegistryEntry *entry;
    std::size_t unitIndex;
    ExperimentConfig cfg;
};

const char *
modeName(WorkloadMode mode)
{
    return mode == WorkloadMode::Unconstrained ? "unconstrained"
                                               : "fixed-frequency";
}

/**
 * Supervise one task: attempt, classify, retry, and — when the budget
 * runs out — quarantine (or escalate).
 *
 * Every fault decision inside the attempt (experiment.run, sensor
 * reads, thermabox regulation) runs under a FaultScope keyed by
 * (task index, attempt), so the decision sequence is a pure function
 * of the plan seed and the task — bit-identical at any jobs count.
 * The experiment.run check fires *before* the cache lookup so a warm
 * cache faults exactly like a cold one.
 */
ExperimentResult
superviseTaskFrom(const ExperimentTask &task, std::size_t task_index,
                  const StudyConfig &study, int start_attempt,
                  ExperimentStatus last)
{
    ExperimentCache *cache = study.cache;
    int max_attempts = std::max(1, study.retry.maxAttempts);
    const std::string &unit_id =
        task.entry->units.at(task.unitIndex).id;

    for (int attempt = start_attempt; attempt < max_attempts;
         ++attempt) {
        ExperimentConfig acfg = task.cfg;
        acfg.retrySalt = static_cast<std::uint64_t>(attempt);
        FaultScope scope(faultScopeId(task_index,
                                      static_cast<std::uint64_t>(
                                          attempt)));

        FaultHit hit = faultCheck(FaultSite::ExperimentRun);
        if (hit.fired) {
            if (hit.kind == FaultKind::Permanent) {
                throw PermanentFaultError(
                    strfmt("unit %s %s: injected permanent fault",
                           unit_id.c_str(), modeName(acfg.mode)));
            }
            last = ExperimentStatus::TransientFault;
            warn("study:   unit %s %s attempt %d/%d: transient "
                 "fault%s",
                 unit_id.c_str(), modeName(acfg.mode), attempt + 1,
                 max_attempts,
                 attempt + 1 < max_attempts ? "; retrying" : "");
            continue;
        }

        auto compute = [&task, &acfg]() {
            std::unique_ptr<Device> device = buildDevice(
                task.entry->spec,
                task.entry->units.at(task.unitIndex), acfg.retrySalt);
            inform("study:   unit %s %s%s", device->unitId().c_str(),
                   modeName(acfg.mode),
                   acfg.retrySalt
                       ? strfmt(" (retry %llu)",
                                static_cast<unsigned long long>(
                                    acfg.retrySalt))
                             .c_str()
                       : "");
            return runExperiment(*device, acfg);
        };
        ExperimentResult result =
            cache ? cache->getOrCompute(*task.entry, task.unitIndex,
                                        acfg, compute)
                  : compute();
        ExperimentStatus status =
            classifyExperiment(result, acfg, study.gate);
        result.status = status;
        result.attempts = static_cast<std::uint32_t>(attempt + 1);
        result.quarantined = false;
        if (status == ExperimentStatus::Ok)
            return result;
        last = status;
        warn("study:   unit %s %s attempt %d/%d: %s%s",
             unit_id.c_str(), modeName(acfg.mode), attempt + 1,
             max_attempts, experimentStatusName(status),
             attempt + 1 < max_attempts ? "; retrying" : "");
    }

    if (!study.retry.quarantine) {
        throw PermanentFaultError(
            strfmt("unit %s %s: %d attempts exhausted (last: %s)",
                   unit_id.c_str(), modeName(task.cfg.mode),
                   max_attempts, experimentStatusName(last)));
    }
    warn("study:   unit %s %s quarantined after %d attempts "
         "(last: %s)",
         unit_id.c_str(), modeName(task.cfg.mode), max_attempts,
         experimentStatusName(last));
    ExperimentResult benched;
    benched.unitId = unit_id;
    benched.model = task.entry->spec.model;
    benched.socName = task.entry->spec.socName;
    benched.status = last;
    benched.attempts = static_cast<std::uint32_t>(max_attempts);
    benched.quarantined = true;
    return benched;
}

ExperimentResult
superviseTask(const ExperimentTask &task, std::size_t task_index,
              const StudyConfig &study)
{
    return superviseTaskFrom(task, task_index, study, 0,
                             ExperimentStatus::TransientFault);
}

/**
 * Chunk the task list into cohorts of up to `batch` same-(entry, mode)
 * tasks. Adjacent tasks alternate modes (unit 0 unc, unit 0 fix, ...),
 * so tasks are bucketed first — cohort members must match so they can
 * share a thermal eigendecomposition and stay phase-aligned.
 */
std::vector<std::vector<std::size_t>>
planCohorts(const std::vector<ExperimentTask> &tasks, int batch)
{
    struct Bucket
    {
        const RegistryEntry *entry;
        WorkloadMode mode;
        std::vector<std::size_t> idxs;
    };
    std::vector<Bucket> buckets;
    for (std::size_t i = 0; i < tasks.size(); ++i) {
        Bucket *bucket = nullptr;
        for (Bucket &b : buckets) {
            if (b.entry == tasks[i].entry &&
                b.mode == tasks[i].cfg.mode) {
                bucket = &b;
                break;
            }
        }
        if (!bucket) {
            buckets.push_back(
                Bucket{tasks[i].entry, tasks[i].cfg.mode, {}});
            bucket = &buckets.back();
        }
        bucket->idxs.push_back(i);
    }

    std::vector<std::vector<std::size_t>> cohorts;
    std::size_t width = static_cast<std::size_t>(batch);
    for (Bucket &b : buckets) {
        for (std::size_t off = 0; off < b.idxs.size(); off += width) {
            std::size_t end = std::min(b.idxs.size(), off + width);
            cohorts.emplace_back(b.idxs.begin() + off,
                                 b.idxs.begin() + end);
        }
    }
    return cohorts;
}

/**
 * Supervise one cohort's tasks: attempt 0 runs through the batch
 * engine, everything after that — classification, retries, quarantine
 * — reuses the serial supervisor from attempt 1. Attempts are
 * independent (own fault scope, own retry-salted device), so the
 * retry tail is bit-identical to the unbatched path; attempt 0 is
 * bit-identical by the engine's determinism contract.
 */
void
superviseCohort(const std::vector<ExperimentTask> &tasks,
                const std::vector<std::size_t> &cohort,
                const StudyConfig &study,
                std::vector<ExperimentResult> &results)
{
    ExperimentCache *cache = study.cache;
    int max_attempts = std::max(1, study.retry.maxAttempts);

    struct Slot
    {
        std::size_t taskIndex = 0;
        std::unique_ptr<FaultFrame> frame;
        ExperimentConfig acfg;
        std::unique_ptr<Device> device; // set iff attempt 0 must run
        bool faulted = false;           // experiment.run fired
        ExperimentStatus last = ExperimentStatus::TransientFault;
        ExperimentResult result; // cache hit or engine output
    };

    std::vector<Slot> slots;
    slots.reserve(cohort.size());
    for (std::size_t ti : cohort) {
        const ExperimentTask &task = tasks[ti];
        const std::string &unit_id =
            task.entry->units.at(task.unitIndex).id;
        Slot slot;
        slot.taskIndex = ti;
        slot.acfg = task.cfg;
        slot.acfg.retrySalt = 0;
        slot.frame = std::make_unique<FaultFrame>(faultScopeId(ti, 0));

        FaultFrameGuard guard(slot.frame.get());
        FaultHit hit = faultCheck(FaultSite::ExperimentRun);
        if (hit.fired) {
            if (hit.kind == FaultKind::Permanent) {
                throw PermanentFaultError(
                    strfmt("unit %s %s: injected permanent fault",
                           unit_id.c_str(), modeName(slot.acfg.mode)));
            }
            slot.faulted = true;
            warn("study:   unit %s %s attempt %d/%d: transient "
                 "fault%s",
                 unit_id.c_str(), modeName(slot.acfg.mode), 1,
                 max_attempts, 1 < max_attempts ? "; retrying" : "");
        } else if (!cache ||
                   !cache->lookup(*task.entry, task.unitIndex,
                                  slot.acfg, slot.result)) {
            slot.device = buildDevice(
                task.entry->spec, task.entry->units.at(task.unitIndex),
                slot.acfg.retrySalt);
            inform("study:   unit %s %s",
                   slot.device->unitId().c_str(),
                   modeName(slot.acfg.mode));
        }
        slots.push_back(std::move(slot));
    }

    // Attempt 0, interleaved across the cohort.
    std::vector<CohortTask> engine_tasks;
    std::vector<Slot *> running;
    for (Slot &slot : slots) {
        if (!slot.device)
            continue;
        CohortTask ct;
        ct.device = slot.device.get();
        ct.cfg = slot.acfg;
        ct.faultFrame = slot.frame.get();
        engine_tasks.push_back(std::move(ct));
        running.push_back(&slot);
    }
    if (!engine_tasks.empty()) {
        std::vector<ExperimentResult> engine_results =
            runExperimentCohort(engine_tasks);
        for (std::size_t j = 0; j < running.size(); ++j) {
            Slot &slot = *running[j];
            slot.result = std::move(engine_results[j]);
            if (cache) {
                const ExperimentTask &task = tasks[slot.taskIndex];
                FaultFrameGuard guard(slot.frame.get());
                cache->insert(*task.entry, task.unitIndex, slot.acfg,
                              slot.result);
            }
        }
    }

    for (Slot &slot : slots) {
        const ExperimentTask &task = tasks[slot.taskIndex];
        const std::string &unit_id =
            task.entry->units.at(task.unitIndex).id;
        if (!slot.faulted) {
            ExperimentStatus status =
                classifyExperiment(slot.result, slot.acfg, study.gate);
            slot.result.status = status;
            slot.result.attempts = 1;
            slot.result.quarantined = false;
            if (status == ExperimentStatus::Ok) {
                results[slot.taskIndex] = std::move(slot.result);
                continue;
            }
            slot.last = status;
            warn("study:   unit %s %s attempt %d/%d: %s%s",
                 unit_id.c_str(), modeName(slot.acfg.mode), 1,
                 max_attempts, experimentStatusName(status),
                 1 < max_attempts ? "; retrying" : "");
        }
        results[slot.taskIndex] = superviseTaskFrom(
            task, slot.taskIndex, study, 1, slot.last);
    }
}

/**
 * Run every task, possibly across a thread pool. results[i] always
 * corresponds to tasks[i], so the output is independent of scheduling.
 * With a cache, each attempt is routed through it; a hit skips the
 * simulation entirely and (by determinism) yields the same bytes.
 * With a batch width above 1, same-(model, mode) tasks run as
 * lockstep cohorts — per-task bytes are unchanged (the batch-size
 * invariant); only throughput moves.
 */
std::vector<ExperimentResult>
runExperimentTasks(const std::vector<ExperimentTask> &tasks,
                   const StudyConfig &cfg)
{
    std::vector<ExperimentResult> results(tasks.size());
    int batch = resolveBatchSize(cfg.batch, cfg.solver);
    if (batch <= 1) {
        parallelFor(tasks.size(), cfg.jobs, [&](std::size_t i) {
            results[i] = superviseTask(tasks[i], i, cfg);
        });
    } else {
        std::vector<std::vector<std::size_t>> cohorts =
            planCohorts(tasks, batch);
        parallelFor(cohorts.size(), cfg.jobs, [&](std::size_t c) {
            superviseCohort(tasks, cohorts[c], cfg, results);
        });
    }
    // A finished study is a durability point: results a client is
    // about to see must survive a crash of the process.
    if (cfg.cache)
        cfg.cache->flushPending();
    return results;
}

/** The two per-unit experiment configs of one model's study. */
std::pair<ExperimentConfig, ExperimentConfig>
studyExperimentConfigs(const RegistryEntry &entry, const StudyConfig &cfg)
{
    ExperimentConfig unc_cfg;
    unc_cfg.mode = WorkloadMode::Unconstrained;
    unc_cfg.iterations = cfg.iterations;
    unc_cfg.accubench = cfg.accubench;
    unc_cfg.thermabox = cfg.thermabox;
    unc_cfg.dt = cfg.dt;
    unc_cfg.solver = cfg.solver;
    unc_cfg.supply = SupplyChoice::MonsoonExplicit;
    unc_cfg.monsoonVoltage = entry.monsoonVoltage;

    ExperimentConfig fix_cfg = unc_cfg;
    fix_cfg.mode = WorkloadMode::FixedFrequency;
    fix_cfg.fixedFrequency = entry.fixedFrequency;
    return {unc_cfg, fix_cfg};
}

/** Tasks for one model, in fleet order: unit 0 unc, unit 0 fix, ... */
std::vector<ExperimentTask>
socStudyTasks(const RegistryEntry &entry, const StudyConfig &cfg)
{
    auto [unc_cfg, fix_cfg] = studyExperimentConfigs(entry, cfg);
    std::vector<ExperimentTask> tasks;
    tasks.reserve(entry.units.size() * 2);
    for (std::size_t u = 0; u < entry.units.size(); ++u) {
        tasks.push_back(ExperimentTask{&entry, u, unc_cfg});
        tasks.push_back(ExperimentTask{&entry, u, fix_cfg});
    }
    return tasks;
}

/** Split interleaved per-unit results back into the two mode lists. */
SocStudy
reduceInterleaved(const std::string &soc_name, const std::string &model,
                  const std::vector<ExperimentResult> &results)
{
    std::vector<ExperimentResult> unconstrained;
    std::vector<ExperimentResult> fixed_freq;
    unconstrained.reserve(results.size() / 2);
    fixed_freq.reserve(results.size() / 2);
    for (std::size_t i = 0; i < results.size(); i += 2) {
        unconstrained.push_back(results[i]);
        fixed_freq.push_back(results[i + 1]);
    }
    return reduceSocStudy(soc_name, model, unconstrained, fixed_freq);
}

} // namespace

ExperimentStatus
classifyExperiment(const ExperimentResult &result,
                   const ExperimentConfig &cfg,
                   const ValidityGate &gate)
{
    double target = cfg.accubench.cooldownTarget.value();
    for (const IterationResult &it : result.iterations) {
        if (gate.requireCooldownTarget && !it.cooldownReachedTarget)
            return ExperimentStatus::InvalidRun;
        if (it.tempAtWorkloadStart.value() >
            target + gate.maxStartAboveTargetC)
            return ExperimentStatus::InvalidRun;
        if (it.peakWorkloadTemp.value() > gate.maxPeakWorkloadTempC)
            return ExperimentStatus::InvalidRun;
    }
    return ExperimentStatus::Ok;
}

SocStudy
reduceSocStudy(const std::string &soc_name, const std::string &model,
               const std::vector<ExperimentResult> &unconstrained,
               const std::vector<ExperimentResult> &fixed_freq)
{
    if (unconstrained.size() != fixed_freq.size())
        fatal("reduceSocStudy: mismatched experiment lists (%zu vs %zu)",
              unconstrained.size(), fixed_freq.size());

    SocStudy study;
    study.socName = soc_name;
    study.model = model;

    std::vector<double> mean_scores;
    std::vector<double> mean_fixed_energies;
    std::vector<double> mean_fixed_scores;
    OnlineSummary rsd_acc;
    OnlineSummary efficiency_acc;

    for (std::size_t i = 0; i < unconstrained.size(); ++i) {
        const ExperimentResult &unc = unconstrained[i];
        const ExperimentResult &fix = fixed_freq[i];

        UnitOutcome unit;
        unit.unitId = unc.unitId;
        unit.meanScore = unc.meanScore();
        unit.scoreRsdPercent = unc.scoreRsdPercent();
        unit.meanUnconstrainedEnergyJ = unc.meanWorkloadEnergy().value();
        unit.meanFixedEnergyJ = fix.meanWorkloadEnergy().value();
        unit.fixedEnergyRsdPercent = fix.energyRsdPercent();
        unit.meanFixedScore = fix.meanScore();
        unit.fixedScoreRsdPercent = fix.scoreRsdPercent();
        unit.unconstrainedStatus = unc.status;
        unit.fixedStatus = fix.status;
        unit.unconstrainedAttempts = unc.attempts;
        unit.fixedAttempts = fix.attempts;
        unit.quarantined = unc.quarantined || fix.quarantined;
        study.units.push_back(unit);

        if (unit.quarantined) {
            // A benched unit contributes nothing to the variation
            // numbers: one placeholder zero-score would otherwise
            // dominate every spread.
            ++study.quarantinedUnits;
            continue;
        }

        mean_scores.push_back(unit.meanScore);
        mean_fixed_energies.push_back(unit.meanFixedEnergyJ);
        mean_fixed_scores.push_back(unit.meanFixedScore);
        rsd_acc.add(unit.scoreRsdPercent);

        if (unit.meanUnconstrainedEnergyJ > 0.0) {
            efficiency_acc.add(unit.meanScore /
                               (unit.meanUnconstrainedEnergyJ / 3600.0));
        }
    }

    study.perfVariationPercent = relativeSpread(mean_scores) * 100.0;
    study.energyVariationPercent =
        relativeExcess(mean_fixed_energies) * 100.0;
    study.fixedPerfSpreadPercent =
        relativeSpread(mean_fixed_scores) * 100.0;
    study.meanScoreRsdPercent = rsd_acc.mean();
    study.efficiencyIterPerWh = efficiency_acc.mean();
    return study;
}

SocStudy
runEntryStudy(const RegistryEntry &entry, const StudyConfig &cfg)
{
    std::vector<ExperimentTask> tasks = socStudyTasks(entry, cfg);
    inform("study: %s (%zu units, %d jobs)",
           entry.spec.socName.c_str(), tasks.size() / 2,
           resolveJobs(cfg.jobs));
    std::vector<ExperimentResult> results =
        runExperimentTasks(tasks, cfg);
    return reduceInterleaved(entry.spec.socName, entry.spec.model,
                             results);
}

SocStudy
runUnitStudy(const RegistryEntry &entry, std::size_t unit_index,
             const StudyConfig &cfg)
{
    if (unit_index >= entry.units.size())
        fatal("runUnitStudy: unit %zu out of range (%s has %zu)",
              unit_index, entry.spec.model.c_str(),
              entry.units.size());
    auto [unc_cfg, fix_cfg] = studyExperimentConfigs(entry, cfg);
    std::vector<ExperimentTask> tasks = {
        ExperimentTask{&entry, unit_index, unc_cfg},
        ExperimentTask{&entry, unit_index, fix_cfg},
    };
    inform("study: %s unit %s (%d jobs)", entry.spec.socName.c_str(),
           entry.units[unit_index].id.c_str(), resolveJobs(cfg.jobs));
    std::vector<ExperimentResult> results =
        runExperimentTasks(tasks, cfg);
    return reduceInterleaved(entry.spec.socName, entry.spec.model,
                             results);
}

SocStudy
runSocStudy(const std::string &soc_name, const StudyConfig &cfg)
{
    return runEntryStudy(DeviceRegistry::builtin().at(soc_name), cfg);
}

std::vector<SocStudy>
runStudy(const std::vector<const RegistryEntry *> &entries,
         const StudyConfig &cfg)
{
    // Flatten all models into one task list so the fan-out spans the
    // whole fleet (~180 experiments at paper scale), not one model at
    // a time; per-model slices are reduced in input order afterwards.
    std::vector<ExperimentTask> tasks;
    std::vector<std::size_t> first_task(entries.size() + 1, 0);
    for (std::size_t s = 0; s < entries.size(); ++s) {
        std::vector<ExperimentTask> entry_tasks =
            socStudyTasks(*entries[s], cfg);
        first_task[s + 1] = first_task[s] + entry_tasks.size();
        for (auto &t : entry_tasks)
            tasks.push_back(std::move(t));
    }
    inform("study: full fleet, %zu experiments, %d jobs", tasks.size(),
           resolveJobs(cfg.jobs));

    std::vector<ExperimentResult> results =
        runExperimentTasks(tasks, cfg);

    std::vector<SocStudy> studies;
    studies.reserve(entries.size());
    for (std::size_t s = 0; s < entries.size(); ++s) {
        std::vector<ExperimentResult> slice(
            results.begin() + first_task[s],
            results.begin() + first_task[s + 1]);
        studies.push_back(reduceInterleaved(entries[s]->spec.socName,
                                            entries[s]->spec.model,
                                            slice));
    }
    return studies;
}

std::vector<SocStudy>
runFullStudy(const StudyConfig &cfg)
{
    std::vector<const RegistryEntry *> entries;
    for (const RegistryEntry &e : DeviceRegistry::builtin().entries()) {
        if (e.inStudy)
            entries.push_back(&e);
    }
    return runStudy(entries, cfg);
}

} // namespace pvar
