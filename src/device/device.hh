/**
 * @file
 * A complete smartphone under test.
 *
 * Device wires together every substrate: the SoC (die + clusters), the
 * thermal package, the die temperature sensor, the DVFS and thermal
 * governors, the optional RBCPR and input-voltage-throttle blocks, the
 * power supply (battery or Monsoon), the workload engine, and a
 * minimal OS surface (wakelocks and system suspend). One call to
 * tick() advances the whole machine by one step, in the physical
 * data-flow order:
 *
 *   workload -> SoC power -> supply -> thermals -> sensor -> governors
 */

#ifndef PVAR_DEVICE_DEVICE_HH
#define PVAR_DEVICE_DEVICE_HH

#include <memory>
#include <string>
#include <vector>

#include "power/battery.hh"
#include "thermal/rc_network.hh"
#include "power/energy_meter.hh"
#include "power/power_supply.hh"
#include "silicon/die.hh"
#include "sim/tickable.hh"
#include "sim/trace.hh"
#include "soc/cpufreq.hh"
#include "soc/input_voltage_throttle.hh"
#include "soc/rbcpr.hh"
#include "soc/soc.hh"
#include "soc/thermal_governor.hh"
#include "thermal/package.hh"
#include "thermal/sensor.hh"
#include "workload/engine.hh"
#include "workload/workload.hh"

namespace pvar
{

/** Everything needed to assemble one device model. */
struct DeviceConfig
{
    /** Model name, e.g. "Nexus 5". */
    std::string model = "phone";

    /** SoC marketing name, e.g. "SD-800". */
    std::string socName = "soc";

    PackageParams package;
    SocParams soc;
    SensorParams sensor;
    ThermalGovernorParams thermalGov;

    /** RBCPR adaptive-voltage block (SD-810 and later). */
    bool hasRbcpr = false;
    RbcprParams rbcpr;

    /** Brownout frequency capping (LG G5). */
    bool hasInputVoltageThrottle = false;
    InputVoltageThrottleParams inputThrottle;

    /** Rest-of-board power with the display off, awake. */
    Watts boardActive{0.10};

    /** Rest-of-board power while suspended. */
    Watts boardSuspended{0.004};

    /** PMIC conversion efficiency (supply side / load side). */
    double pmicEfficiency = 0.88;

    BatteryParams battery;

    /** Environment temperature at construction. */
    Celsius initialAmbient{26.0};

    /** Seed for the sensor noise stream. */
    std::uint64_t sensorSeed = 0x5eed;

    /**
     * Mean fraction of CPU cycles stolen by residual background
     * activity while awake (0 disables). Even a locked, stripped
     * LineageOS build has kernel threads and timers; the paper's
     * FIXED-FREQUENCY runs show 1.3-2.6% RSD from exactly this.
     */
    double backgroundNoiseMean = 0.0;

    /** How often the background activity level changes. */
    Time backgroundNoisePeriod = Time::sec(2);

    /** Spacing of trace samples (0 disables tracing). */
    Time tracePeriod = Time::msec(500);
};

/**
 * The device model.
 */
class Device : public Tickable
{
  public:
    /**
     * @param config static configuration.
     * @param die this unit's silicon.
     */
    Device(DeviceConfig config, Die die);

    std::string name() const override;

    /** The model string from the config. */
    const std::string &model() const { return _config.model; }

    /** SoC name from the config. */
    const std::string &socName() const { return _config.socName; }

    /** Unique unit id (the die id). */
    const std::string &unitId() const { return _soc.die().id(); }

    /** @name Component access. @{ */
    Soc &soc() { return _soc; }
    const Soc &soc() const { return _soc; }
    PhonePackage &thermalPackage() { return _package; }
    const PhonePackage &thermalPackage() const { return _package; }
    EnergyMeter &energyMeter() { return _meter; }
    const EnergyMeter &energyMeter() const { return _meter; }
    Battery &battery() { return _battery; }
    ThermalGovernor &thermalGovernor() { return _thermalGov; }
    const DeviceConfig &config() const { return _config; }
    /** @} */

    /** @name Power supply. @{ */

    /**
     * Power from an external supply (e.g. Monsoon) instead of the
     * internal battery; pass nullptr to revert to the battery. The
     * external supply must outlive the device.
     */
    void attachExternalSupply(PowerSupply *supply);

    /** The active supply (battery unless an external one is attached). */
    PowerSupply &supply();

    /** Terminal voltage observed at the last tick. */
    Volts supplyVoltage() const { return _lastSupplyVoltage; }

    /** Total electrical power drawn at the last tick (supply side). */
    Watts lastPower() const { return _lastPower; }

    /** @} */

    /** @name OS surface. @{ */

    /** Hold/release a wakelock (counted). */
    void acquireWakelock();
    void releaseWakelock();
    int wakelockCount() const { return _wakelocks; }

    /**
     * Allow the system to suspend when no wakelock is held. ACCUBENCH
     * enables this during the cooldown phase.
     */
    void setSuspendAllowed(bool allowed) { _suspendAllowed = allowed; }

    /** Hold the system awake until the given time (sensor poll wakeups). */
    void stayAwakeUntil(Time until);

    /** True if the system was suspended during the last tick. */
    bool suspended() const { return _suspended; }

    /** The die temperature as software sees it (latched sensor). */
    Celsius readCpuTemp() const { return _sensor.read(); }

    /**
     * Highest latched sensor reading observed since the last
     * resetSensorPeak() — the per-tick running max ACCUBENCH scores
     * as the peak workload temperature.
     */
    Celsius sensorPeak() const { return _sensorPeak; }

    /** Restart peak tracking from the current latched reading. */
    void resetSensorPeak() { _sensorPeak = _sensor.read(); }

    /** @} */

    /** @name Workload control. @{ */

    void startWorkload(const CpuIntensiveWorkload &w);
    void stopWorkload();
    bool workloadRunning() const { return _engine.running(); }
    double iterations() const { return _engine.iterations(); }
    void resetIterations() { _engine.resetIterations(); }

    /** @} */

    /** @name DVFS policy. @{ */

    /** UNCONSTRAINED mode: performance governor on every cluster. */
    void setPerformanceMode();

    /**
     * FIXED-FREQUENCY mode: pin every cluster at the highest OPP not
     * exceeding `f`.
     */
    void setFixedFrequency(MegaHertz f);

    /**
     * Stock-Android-like mode: the interactive governor ramps each
     * cluster with its utilization (used for consumer-workload
     * scenarios rather than the paper's two lab modes).
     */
    void setInteractiveMode();

    /** @} */

    /** @name Solver selection. @{ */

    /**
     * Choose how tick() advances the device. Stepped is the
     * bit-identity reference (explicit Euler substeps at the base
     * cadence); Fast advances analytically between service instants
     * via the eigendecomposed matrix exponential, servicing sensors,
     * governors, noise and tracing on an internal 250 ms awake /
     * 500 ms suspended cadence. Outputs agree to tolerance, not
     * bit-for-bit.
     */
    void setThermalSolver(SolverKind kind) { _solver = kind; }

    SolverKind thermalSolver() const { return _solver; }

    /**
     * Number of analytic segments where the leakage Picard closure
     * failed to contract and the stepped integrator was used instead.
     */
    std::uint64_t picardFallbacks() const { return _picardFallbacks; }

    /** @} */

    /** @name Environment and tracing. @{ */

    /** Drive the ambient temperature (THERMABOX coupling). */
    void setAmbient(Celsius t) { _package.setAmbient(t); }

    /** Soak the whole device to a temperature (experiment reset). */
    void soakTo(Celsius t);

    /** Heat flowing from the case into the environment (watts). */
    double heatToAmbientW() const
    {
        return _package.heatToAmbient().value();
    }

    /**
     * Record state into `trace` (channels "<prefix>die_temp" etc.);
     * nullptr stops recording.
     */
    void attachTrace(Trace *trace, const std::string &prefix = "");

    /** @} */

    void tick(Time now, Time dt) override;

    Time nextBoundary(Time now, Time base_dt) const override;

    /**
     * @name Staged fast-path driver (batch engine).
     *
     * fastTick() decomposed so a cohort engine can interleave the
     * awake/suspend segments of many devices on one thread: begin a
     * tick, then repeat { fastSegmentAdvance(); if it returned true,
     * jump the thermals (fastSegmentJump(), or a batched equivalent
     * over the exposed network); fastSegmentService(); } until
     * fastTickDone(). Driving the stages in that order is exactly
     * fastTick() — the solo path calls these same hooks. Only
     * meaningful when the Fast solver is selected.
     * @{
     */

    /** Open a staged fast tick covering (now - dt, now]. */
    void fastTickBegin(Time now, Time dt);

    /** True once the staged tick consumed its whole span. */
    bool fastTickDone() const { return _ftCursor >= _ftEnd; }

    /**
     * Plan and compute the next segment: workload accrual, the power
     * closure and battery drain — everything except the thermal jump.
     *
     * @return true when the analytic thermal jump over
     *         fastSegmentSpan() is still pending (perform it before
     *         fastSegmentService()); false when this segment already
     *         advanced thermals through the stepped fallback.
     */
    bool fastSegmentAdvance();

    /** Span of the segment opened by the last fastSegmentAdvance(). */
    Time fastSegmentSpan() const { return _ftSpan; }

    /** The package network a batched jump advances by the span. */
    ThermalNetwork &packageNetwork() { return _package.network(); }

    /** Serial thermal jump over the pending segment. */
    void fastSegmentJump() { _package.fastStep(_ftSpan); }

    /** Close the segment: sensor, governors, trace; moves the cursor. */
    void fastSegmentService();

    /** @} */

    /** Reset governors and meters for a fresh experiment iteration. */
    void resetExperimentState();

    /**
     * @name Live-point state.
     *
     * Serializes every field that evolves during a protocol run:
     * silicon/thermal/supply state, OS surface, governor latches, the
     * noise stream, and accounting. Excluded by design: the external
     * supply pointer, trace attachment and channel caches, the solver
     * selection, and the staged fast-tick scratch — all of those are
     * (re)established by the experiment configuration path before a
     * restore, which must therefore run *after* attachTrace() so the
     * restored trace cursor survives. loadState() returns false on
     * any malformed input, leaving the device unspecified; callers
     * roll back via a saved cold snapshot (see batch.cc).
     * @{
     */
    void saveState(ByteWriter &w) const;
    bool loadState(ByteReader &r);
    /** @} */

  private:
    DeviceConfig _config;
    Soc _soc;
    PhonePackage _package;
    TemperatureSensor _sensor;
    Battery _battery;
    PowerSupply *_externalSupply;
    WorkloadEngine _engine;
    ThermalGovernor _thermalGov;
    std::vector<RbcprController> _rbcpr; // one per cluster when enabled
    InputVoltageThrottle _inputThrottle;
    bool _inputThrottleEnabled;
    EnergyMeter _meter;

    std::vector<std::unique_ptr<CpufreqGovernor>> _cpufreq;

    int _wakelocks;
    bool _suspendAllowed;
    bool _suspended;
    Time _wakeUntil;

    Volts _lastSupplyVoltage;
    Watts _lastPower;

    Trace *_trace;
    std::string _tracePrefix;
    Time _lastTraceSample;

    // Channel handles resolved once in attachTrace(); recordTrace is
    // on the hot path in both solver modes.
    TraceChannel *_chDieTemp = nullptr;
    TraceChannel *_chCaseTemp = nullptr;
    TraceChannel *_chPower = nullptr;
    TraceChannel *_chSupply = nullptr;
    TraceChannel *_chOnlineCores = nullptr;
    std::vector<TraceChannel *> _chClusterFreq;

    Rng _noiseRng;
    Time _lastNoiseUpdate;
    bool _noisePrimed;

    SolverKind _solver = SolverKind::Stepped;
    bool _hasInteractiveGov = false;
    Celsius _sensorPeak{0.0};
    std::uint64_t _picardFallbacks = 0;

    // Staged fast-tick state (see the cohort driver hooks above).
    Time _ftCursor;  // consumed up to here
    Time _ftEnd;     // tick target
    Time _ftSegEnd;  // end of the open segment
    Time _ftSpan;    // its span
    bool _ftAwake = false;

    void applyGovernors(Time now);
    void recordTrace(Time now);
    void updateBackgroundNoise(Time now);

    void steppedTick(Time now, Time dt);
    void fastTick(Time now, Time dt);
    bool fastSegmentCompute(Time seg_end, Time seg, bool awake);
    void serviceFast(Time now, bool awake);
    void trackSensorPeak()
    {
        if (_sensor.read().value() > _sensorPeak.value())
            _sensorPeak = _sensor.read();
    }
};

} // namespace pvar

#endif // PVAR_DEVICE_DEVICE_HH
