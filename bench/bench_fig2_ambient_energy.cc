/**
 * @file
 * Regenerates paper Fig 2: energy scaling with ambient temperature on
 * two different devices running at maximum frequency.
 *
 * The chamber target sweeps 10-42 C; for each ambient, the energy to
 * complete the same amount of work (J/iteration, UNCONSTRAINED) is
 * reported relative to the coolest point. The paper observes 25-30%
 * extra energy at high ambient, on every device tested.
 */

#include <cstdio>

#include "accubench/experiment.hh"
#include "bench_util.hh"
#include "device/catalog.hh"
#include "report/figure.hh"
#include "report/table.hh"

using namespace pvar;

namespace
{

struct SweepPoint
{
    double ambient;
    double joulePerIter;
};

std::vector<SweepPoint>
sweep(Device &device, MegaHertz pinned,
      const std::vector<double> &ambients)
{
    // FIXED-FREQUENCY keeps the work identical at every ambient: the
    // energy difference is pure leakage (plus its thermal feedback).
    // Under free DVFS the comparison would be confounded: throttling
    // at high ambient moves the device to a lower, more efficient
    // operating point.
    std::vector<SweepPoint> points;
    for (double amb : ambients) {
        ExperimentConfig cfg;
        cfg.mode = WorkloadMode::FixedFrequency;
        cfg.fixedFrequency = pinned;
        cfg.iterations = 2;
        cfg.thermabox.target = Celsius(amb);
        // The cooldown target must stay reachable above the ambient.
        cfg.accubench.cooldownTarget = Celsius(amb + 8.0);
        ExperimentResult r = runExperiment(device, cfg);
        points.push_back(
            {amb, r.meanWorkloadEnergy().value() / r.meanScore()});
    }
    return points;
}

} // namespace

int
main()
{
    benchQuiet();
    std::printf("%s", figureHeader(
        "Fig 2: Energy scaling with ambient temperature (max frequency)",
        "same work costs 25-30% more energy at high ambient; the trend "
        "holds across devices").c_str());

    const std::vector<double> ambients = {10, 18, 26, 34, 42};

    auto nexus5 = makeNexus5(2, UnitCorner{"N5-bin2", +0.30, +0.10, 0.0});
    auto nexus6p = makeNexus6p(UnitCorner{"6P-520", 0.0, 0.0, 0.0});

    Table t({"Ambient C", "Nexus 5 J/iter", "(rel)", "Nexus 6P J/iter",
             "(rel)"});
    auto n5 = sweep(*nexus5, MegaHertz(1190), ambients);
    auto px = sweep(*nexus6p, MegaHertz(864), ambients);
    for (std::size_t i = 0; i < ambients.size(); ++i) {
        t.addRow({fmtDouble(ambients[i], 0),
                  fmtDouble(n5[i].joulePerIter, 2),
                  fmtDouble(n5[i].joulePerIter / n5[0].joulePerIter, 3),
                  fmtDouble(px[i].joulePerIter, 2),
                  fmtDouble(px[i].joulePerIter / px[0].joulePerIter, 3)});
    }
    std::printf("%s", t.render().c_str());

    std::printf("\nSHAPE CHECK vs paper:\n");
    double n5_rise = n5.back().joulePerIter / n5.front().joulePerIter - 1;
    double px_rise = px.back().joulePerIter / px.front().joulePerIter - 1;
    shapeCheck(n5_rise > 0.15,
               "Nexus 5: " + fmtPercent(n5_rise * 100.0) +
                   " more energy at 42C than 10C (paper: 25-30%)");
    shapeCheck(px_rise > 0.10,
               "Nexus 6P: " + fmtPercent(px_rise * 100.0) +
                   " more energy at 42C than 10C (effect holds across "
                   "devices)");
    bool monotone = true;
    for (std::size_t i = 0; i + 1 < n5.size(); ++i)
        monotone &= n5[i].joulePerIter <= n5[i + 1].joulePerIter * 1.01;
    shapeCheck(monotone, "energy rises monotonically with ambient");
    return 0;
}
