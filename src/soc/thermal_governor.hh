/**
 * @file
 * Thermal throttling governor.
 *
 * Models msm_thermal-style mitigation: an ordered list of trip points,
 * each with a frequency cap, evaluated against the die sensor at a
 * fixed polling period with hysteresis (a trip engages at `trip` and
 * releases only below `clear`). Optionally, core-shutdown rules take
 * whole cores offline at higher temperatures — the Nexus 5 behaviour
 * the paper's Fig 1 caption describes ("Once thermal limits of 80C are
 * reached, one CPU core is shut down").
 *
 * §IV-B of the paper hinges on exactly this mechanism: two dies with
 * different leakage see different temperature trajectories, engage
 * different trips for different durations, and therefore deliver
 * different mean frequency and benchmark scores.
 */

#ifndef PVAR_SOC_THERMAL_GOVERNOR_HH
#define PVAR_SOC_THERMAL_GOVERNOR_HH

#include <limits>
#include <vector>

#include "sim/bytes.hh"
#include "sim/time.hh"
#include "sim/units.hh"

namespace pvar
{

/** One frequency-cap trip point. */
struct TripPoint
{
    /** Temperature at which the cap engages. */
    Celsius trip{75.0};

    /** Temperature below which the cap releases (trip - hysteresis). */
    Celsius clear{72.0};

    /** Frequency cap applied while engaged. */
    MegaHertz cap{1728.0};
};

/** One core-shutdown rule. */
struct CoreShutdownRule
{
    Celsius trip{80.0};
    Celsius clear{76.0};

    /** Cores forced offline while engaged. */
    int coresOffline = 1;
};

/** Static configuration of a governor instance. */
struct ThermalGovernorParams
{
    std::vector<TripPoint> trips;
    std::vector<CoreShutdownRule> shutdowns;

    /** Sensor evaluation period. */
    Time pollPeriod = Time::msec(250);
};

/**
 * The mitigation state machine.
 */
class ThermalGovernor
{
  public:
    explicit ThermalGovernor(ThermalGovernorParams params);

    /**
     * Evaluate the sensor reading; a no-op between poll periods.
     *
     * @param now current time.
     * @param reading latched sensor temperature.
     */
    void update(Time now, Celsius reading);

    /**
     * Current frequency cap (min across engaged trips), or
     * `unlimited()` when no trip is engaged.
     */
    MegaHertz freqCap() const;

    /** Number of cores currently forced offline. */
    int coresForcedOffline() const;

    /** True if any mitigation is active. */
    bool mitigating() const;

    /** Sentinel meaning "no cap". */
    static constexpr MegaHertz
    unlimited()
    {
        return MegaHertz(std::numeric_limits<double>::infinity());
    }

    /** Reset all latched state (new experiment iteration). */
    void reset();

    const ThermalGovernorParams &params() const { return _params; }

    /** @name Live-point state (latched trips, poll clock). @{ */
    void
    saveState(ByteWriter &w) const
    {
        w.u32(static_cast<std::uint32_t>(_tripActive.size()));
        for (bool active : _tripActive)
            w.u8(active ? 1 : 0);
        w.u32(static_cast<std::uint32_t>(_shutdownActive.size()));
        for (bool active : _shutdownActive)
            w.u8(active ? 1 : 0);
        w.i64(_lastPoll.toUsec());
        w.u8(_primed ? 1 : 0);
    }

    bool
    loadState(ByteReader &r)
    {
        std::uint32_t n_trips = 0, n_shutdowns = 0;
        std::int64_t last_poll = 0;
        std::uint8_t primed = 0;
        if (!r.u32(n_trips) || n_trips != _tripActive.size())
            return false;
        for (std::size_t i = 0; i < _tripActive.size(); ++i) {
            std::uint8_t active = 0;
            if (!r.u8(active) || active > 1)
                return false;
            _tripActive[i] = active != 0;
        }
        if (!r.u32(n_shutdowns) ||
            n_shutdowns != _shutdownActive.size())
            return false;
        for (std::size_t i = 0; i < _shutdownActive.size(); ++i) {
            std::uint8_t active = 0;
            if (!r.u8(active) || active > 1)
                return false;
            _shutdownActive[i] = active != 0;
        }
        if (!r.i64(last_poll) || !r.u8(primed) || primed > 1)
            return false;
        _lastPoll = Time::usec(last_poll);
        _primed = primed != 0;
        return true;
    }
    /** @} */

  private:
    ThermalGovernorParams _params;
    std::vector<bool> _tripActive;
    std::vector<bool> _shutdownActive;
    Time _lastPoll;
    bool _primed;
};

} // namespace pvar

#endif // PVAR_SOC_THERMAL_GOVERNOR_HH
