#include "workload/engine.hh"

#include <cmath>

#include "sim/logging.hh"

namespace pvar
{

WorkloadEngine::WorkloadEngine(Soc *soc)
    : _soc(soc), _running(false), _iterations(0.0),
      _backgroundSteal(0.0), _phaseClock(Time::zero())
{
    if (!soc)
        fatal("WorkloadEngine: null SoC");
    _clusterIterations.assign(_soc->clusterCount(), 0.0);
}

void
WorkloadEngine::setBackgroundSteal(double fraction)
{
    if (fraction < 0.0 || fraction >= 1.0)
        fatal("WorkloadEngine: steal fraction %g outside [0, 1)",
              fraction);
    _backgroundSteal = fraction;
}

void
WorkloadEngine::start(const CpuIntensiveWorkload &w)
{
    _workload = w;
    _running = true;
    _phaseClock = Time::zero();
}

void
WorkloadEngine::stop()
{
    _running = false;
    for (auto &c : _soc->clusters())
        c.setUtilization(0.0);
}

void
WorkloadEngine::tick(Time dt)
{
    if (!_running)
        return;

    // Duty-cycled (interactive-style) workloads alternate between a
    // busy window and idle for the rest of each burst period.
    double util = _workload.utilization;
    if (_workload.burstPeriod > Time::zero()) {
        _phaseClock += dt;
        double phase = std::fmod(_phaseClock.toSec(),
                                 _workload.burstPeriod.toSec());
        bool busy =
            phase < _workload.burstDuty * _workload.burstPeriod.toSec();
        if (!busy)
            util = 0.0;
    }

    for (std::size_t i = 0; i < _soc->clusterCount(); ++i) {
        CpuCluster &c = _soc->cluster(i);
        // The benchmark keeps the cores busy regardless; stolen
        // cycles consume power without producing iterations.
        c.setUtilization(util);
        double done =
            c.workRate() * (1.0 - _backgroundSteal) * dt.toSec();
        _clusterIterations[i] += done;
        _iterations += done;
    }
}

void
WorkloadEngine::resetIterations()
{
    _iterations = 0.0;
    _clusterIterations.assign(_soc->clusterCount(), 0.0);
}

} // namespace pvar
