/**
 * @file
 * Throttling analysis over recorded experiment traces (paper §IV-B).
 *
 * The paper's source-of-variation analysis reads frequency and
 * temperature distributions out of per-iteration traces: mean
 * delivered frequency, time spent capped, and time at temperature.
 * This module computes those metrics from an ExperimentResult's
 * trace so figures and studies share one implementation.
 */

#ifndef PVAR_ACCUBENCH_THROTTLE_ANALYSIS_HH
#define PVAR_ACCUBENCH_THROTTLE_ANALYSIS_HH

#include <string>

#include "sim/trace.hh"
#include "stats/histogram.hh"

namespace pvar
{

/** Aggregate throttling metrics for one experiment trace. */
struct ThrottleAnalysis
{
    /** Mean frequency over awake samples (MHz). */
    double meanFreqMhz = 0.0;

    /** Fraction of awake time spent below the reference top OPP. */
    double fractionCapped = 0.0;

    /** Fraction of awake time at or above the hot threshold. */
    double fractionHot = 0.0;

    /** Number of distinct frequency changes observed while awake. */
    int freqChanges = 0;

    /** Distribution of awake frequencies (MHz). */
    Histogram freqHist{0, 1, 1};

    /** Distribution of die temperatures while awake (C). */
    Histogram tempHist{0, 1, 1};
};

/** Knobs for the analysis. */
struct ThrottleAnalysisConfig
{
    /** Trace channel carrying the cluster frequency. */
    std::string freqChannel = "freq_cpu";

    /** Trace channel carrying the die temperature. */
    std::string tempChannel = "die_temp";

    /** The unthrottled top frequency (samples below count as capped). */
    double topFreqMhz = 0.0;

    /** "Time at temperature" threshold (C). */
    double hotThresholdC = 70.0;

    /** Histogram ranges. */
    double freqLoMhz = 0.0;
    double freqHiMhz = 2500.0;
    double tempLoC = 25.0;
    double tempHiC = 90.0;

    /** Bins for both histograms. */
    std::size_t bins = 8;
};

/**
 * Analyze a recorded trace.
 *
 * Samples where the frequency channel reads zero (system suspended)
 * are excluded; every retained sample is weighted by its hold time.
 */
ThrottleAnalysis analyzeThrottling(const Trace &trace,
                                   const ThrottleAnalysisConfig &cfg);

} // namespace pvar

#endif // PVAR_ACCUBENCH_THROTTLE_ANALYSIS_HH
