file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_nexus5_dist.dir/bench_fig12_nexus5_dist.cc.o"
  "CMakeFiles/bench_fig12_nexus5_dist.dir/bench_fig12_nexus5_dist.cc.o.d"
  "bench_fig12_nexus5_dist"
  "bench_fig12_nexus5_dist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_nexus5_dist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
