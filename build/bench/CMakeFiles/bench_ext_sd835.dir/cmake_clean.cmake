file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_sd835.dir/bench_ext_sd835.cc.o"
  "CMakeFiles/bench_ext_sd835.dir/bench_ext_sd835.cc.o.d"
  "bench_ext_sd835"
  "bench_ext_sd835.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_sd835.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
