file(REMOVE_RECURSE
  "CMakeFiles/pvar_silicon.dir/silicon/binning.cc.o"
  "CMakeFiles/pvar_silicon.dir/silicon/binning.cc.o.d"
  "CMakeFiles/pvar_silicon.dir/silicon/die.cc.o"
  "CMakeFiles/pvar_silicon.dir/silicon/die.cc.o.d"
  "CMakeFiles/pvar_silicon.dir/silicon/process_node.cc.o"
  "CMakeFiles/pvar_silicon.dir/silicon/process_node.cc.o.d"
  "CMakeFiles/pvar_silicon.dir/silicon/timing.cc.o"
  "CMakeFiles/pvar_silicon.dir/silicon/timing.cc.o.d"
  "CMakeFiles/pvar_silicon.dir/silicon/variation_model.cc.o"
  "CMakeFiles/pvar_silicon.dir/silicon/variation_model.cc.o.d"
  "CMakeFiles/pvar_silicon.dir/silicon/vf_table.cc.o"
  "CMakeFiles/pvar_silicon.dir/silicon/vf_table.cc.o.d"
  "libpvar_silicon.a"
  "libpvar_silicon.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pvar_silicon.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
