/**
 * @file
 * The system-on-chip: a die carrying one or more CPU clusters.
 */

#ifndef PVAR_SOC_SOC_HH
#define PVAR_SOC_SOC_HH

#include <string>
#include <vector>

#include "silicon/die.hh"
#include "soc/cluster.hh"

namespace pvar
{

/** Static configuration of an SoC model. */
struct SocParams
{
    /** Marketing name, e.g. "SD-800". */
    std::string name = "soc";

    /** Clusters, ordered big-to-LITTLE where applicable. */
    std::vector<ClusterParams> clusters;

    /** Uncore power while the system is awake (rails, memory ctrl). */
    Watts uncoreActive{0.25};

    /** Uncore power while suspended. */
    Watts uncoreSuspended{0.012};
};

/**
 * A die plus its clusters; the power-relevant heart of a Device.
 */
class Soc
{
  public:
    Soc(SocParams params, Die die);

    const std::string &name() const { return _params.name; }
    const Die &die() const { return _die; }

    std::size_t clusterCount() const { return _clusters.size(); }
    CpuCluster &cluster(std::size_t i);
    const CpuCluster &cluster(std::size_t i) const;
    std::vector<CpuCluster> &clusters() { return _clusters; }
    const std::vector<CpuCluster> &clusters() const { return _clusters; }

    /** Total core count across clusters. */
    int totalCores() const;

    /**
     * Total SoC electrical power.
     *
     * @param die_temp junction temperature.
     * @param suspended true when the OS suspended the system; clusters
     *        are power-collapsed and only retention leakage remains.
     */
    Watts power(Celsius die_temp, bool suspended) const;

    /** Sum of cluster work rates (iterations/second). */
    double workRate() const;

    /** Set every cluster to its lowest OPP. */
    void toLowestOpp();

    /** Set every cluster to its highest OPP. */
    void toHighestOpp();

    /** @name Live-point state (per-cluster dynamic state). @{ */
    void
    saveState(ByteWriter &w) const
    {
        w.u32(static_cast<std::uint32_t>(_clusters.size()));
        for (const CpuCluster &c : _clusters)
            c.saveState(w);
    }

    bool
    loadState(ByteReader &r)
    {
        std::uint32_t n_clusters = 0;
        if (!r.u32(n_clusters) || n_clusters != _clusters.size())
            return false;
        for (CpuCluster &c : _clusters)
            if (!c.loadState(r))
                return false;
        return true;
    }
    /** @} */

  private:
    SocParams _params;
    Die _die;
    std::vector<CpuCluster> _clusters;
};

} // namespace pvar

#endif // PVAR_SOC_SOC_HH
