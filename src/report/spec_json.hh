/**
 * @file
 * DeviceSpec and fleet-file (de)serialization.
 *
 * Specs round-trip to disk as JSON so a fleet can be defined without
 * writing code: `pvar_study --fleet my_fleet.json` runs the full
 * ACCUBENCH protocol on whatever models and calibrated units the file
 * describes. Doubles are rendered with jsonExactDouble() and times as
 * integer microseconds, so serialize -> parse -> rebuild is bit-exact
 * (the round-trip property test pins this).
 *
 * Fleet-file schema (all spec fields optional, defaulting to the
 * DeviceSpec defaults; see examples/custom_fleet.json):
 *
 *   { "fleet": [ {
 *       "base": "SD-800",          // optional: start from a built-in
 *                                  // registry entry's spec
 *       "spec": { ... },           // optional: full/partial DeviceSpec
 *                                  // (required when there is no base)
 *       "fixed_frequency_mhz": 1574,
 *       "monsoon_v": 3.8,
 *       "units": [ { "id": "u0", "corner": -1.0,
 *                    "leak_residual": 0.1, "vth_offset": 0.0,
 *                    "bin": 2 } ]
 *   } ] }
 */

#ifndef PVAR_REPORT_SPEC_JSON_HH
#define PVAR_REPORT_SPEC_JSON_HH

#include <string>
#include <vector>

#include "device/registry.hh"
#include "device/spec.hh"
#include "report/json.hh"

namespace pvar
{

/** Serialize one spec as a JSON object. */
std::string toJson(const DeviceSpec &spec);

/** Serialize a registry entry (spec + units + study constants). */
std::string toJson(const RegistryEntry &entry);

/** Serialize entries as a complete fleet document. */
std::string fleetToJson(const std::vector<RegistryEntry> &entries);

/**
 * Rebuild a spec from a parsed JSON object. Fields not present keep
 * their value from @p base (pass a default DeviceSpec for absolute
 * parsing). Throws JsonError on type mismatches.
 */
DeviceSpec specFromJson(const JsonValue &v, DeviceSpec base = {});

/** Rebuild a unit corner from a parsed JSON object. */
UnitCorner unitCornerFromJson(const JsonValue &v);

/**
 * Rebuild one registry entry from a fleet-document element, resolving
 * "base" references against the built-in registry. Throws JsonError
 * on schema violations (unknown base, missing units, wrong types).
 */
RegistryEntry registryEntryFromJson(const JsonValue &v);

/**
 * Parse a whole fleet document ({"fleet": [...]} or a bare array).
 * Throws JsonError on schema violations.
 */
std::vector<RegistryEntry> fleetFromJson(const JsonValue &v);

/**
 * Load and parse a fleet file; fatal on I/O, parse, or schema errors,
 * naming the file and (for parse errors) the line:column position.
 */
std::vector<RegistryEntry> loadFleetFile(const std::string &path);

/** Write a fleet document to a file; fatal on I/O errors. */
void saveFleetFile(const std::string &path,
                   const std::vector<RegistryEntry> &entries);

} // namespace pvar

#endif // PVAR_REPORT_SPEC_JSON_HH
