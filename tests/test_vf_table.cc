/**
 * @file
 * Unit tests for V-F operating-point tables.
 */

#include <gtest/gtest.h>

#include "silicon/vf_table.hh"

namespace pvar
{
namespace
{

VfTable
sampleTable()
{
    return VfTable({
        {MegaHertz(960), Volts(0.865)},
        {MegaHertz(300), Volts(0.800)},
        {MegaHertz(2265), Volts(1.100)},
        {MegaHertz(1574), Volts(0.965)},
    });
}

TEST(VfTable, SortsAscendingByFrequency)
{
    VfTable t = sampleTable();
    ASSERT_EQ(t.size(), 4u);
    EXPECT_DOUBLE_EQ(t.point(0).freq.value(), 300);
    EXPECT_DOUBLE_EQ(t.point(3).freq.value(), 2265);
    EXPECT_DOUBLE_EQ(t.lowest().freq.value(), 300);
    EXPECT_DOUBLE_EQ(t.highest().freq.value(), 2265);
}

TEST(VfTable, VoltageForExactAndBetween)
{
    VfTable t = sampleTable();
    EXPECT_DOUBLE_EQ(t.voltageFor(MegaHertz(960)).value(), 0.865);
    // Between OPPs: the next higher OPP's voltage applies.
    EXPECT_DOUBLE_EQ(t.voltageFor(MegaHertz(1000)).value(), 0.965);
    EXPECT_DOUBLE_EQ(t.voltageFor(MegaHertz(100)).value(), 0.800);
}

TEST(VfTable, IndexAtOrBelow)
{
    VfTable t = sampleTable();
    EXPECT_EQ(t.indexAtOrBelow(MegaHertz(2265)), 3u);
    EXPECT_EQ(t.indexAtOrBelow(MegaHertz(2000)), 2u);
    EXPECT_EQ(t.indexAtOrBelow(MegaHertz(960)), 1u);
    EXPECT_EQ(t.indexAtOrBelow(MegaHertz(959)), 0u);
    // Cap below the lowest OPP clamps to index 0.
    EXPECT_EQ(t.indexAtOrBelow(MegaHertz(100)), 0u);
    EXPECT_EQ(t.indexAtOrBelow(MegaHertz(1e12)), 3u);
}

TEST(VfTable, IndexOf)
{
    VfTable t = sampleTable();
    EXPECT_EQ(t.indexOf(MegaHertz(1574)), 2u);
    EXPECT_DEATH((void)t.indexOf(MegaHertz(1234)), "");
}

TEST(VfTable, FatalOnOutOfRangeQueries)
{
    VfTable t = sampleTable();
    EXPECT_DEATH((void)t.voltageFor(MegaHertz(3000)), "");
    EXPECT_DEATH((void)t.point(9), "");
}

TEST(VfTable, EmptyTableBehaviour)
{
    VfTable t;
    EXPECT_TRUE(t.empty());
    EXPECT_DEATH((void)t.lowest(), "");
    EXPECT_DEATH((void)t.highest(), "");
    EXPECT_DEATH((void)t.indexAtOrBelow(MegaHertz(1)), "");
}

TEST(VfTable, DuplicateFrequencyIsFatal)
{
    EXPECT_DEATH(VfTable({{MegaHertz(300), Volts(0.8)},
                          {MegaHertz(300), Volts(0.9)}}),
                 "");
}

TEST(VfTable, ToStringMentionsEveryOpp)
{
    VfTable t = sampleTable();
    std::string s = t.toString();
    EXPECT_NE(s.find("300:800mV"), std::string::npos);
    EXPECT_NE(s.find("2265:1100mV"), std::string::npos);
}

} // namespace
} // namespace pvar
