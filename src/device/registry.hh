/**
 * @file
 * Name-keyed device registry.
 *
 * The registry is the data catalog behind the study: for each phone
 * model it holds the declarative DeviceSpec, the calibrated silicon
 * corners of the paper's experimental units, and the per-model study
 * constants (the FIXED-FREQUENCY pin and the Monsoon voltage). The
 * built-in registry carries the paper's five models plus the SD-835
 * extension; fleets loaded from JSON spec files produce the same
 * RegistryEntry records, so the protocol runs either interchangeably.
 */

#ifndef PVAR_DEVICE_REGISTRY_HH
#define PVAR_DEVICE_REGISTRY_HH

#include <memory>
#include <string>
#include <vector>

#include "device/spec.hh"

namespace pvar
{

/** Owned list of devices. */
using Fleet = std::vector<std::unique_ptr<Device>>;

/** One model: its spec, its calibrated fleet, its study constants. */
struct RegistryEntry
{
    DeviceSpec spec;

    /** The calibrated units of the experimental fleet, study order. */
    std::vector<UnitCorner> units;

    /**
     * The fixed frequency used for the FIXED-FREQUENCY workload (a
     * mid-ladder OPP guaranteed not to reach any trip point).
     */
    MegaHertz fixedFrequency{1190.0};

    /**
     * The Monsoon output voltage the study powers this model at
     * (nominal battery voltage, except the LG G5's 4.4 V — Fig 10).
     */
    Volts monsoonVoltage{3.85};

    /** Part of the paper's Table II study (the SD-835 extension isn't). */
    bool inStudy = true;
};

/** A (model, unit) pair found by unit id. */
struct UnitRef
{
    const RegistryEntry *entry = nullptr;
    std::size_t unitIndex = 0;
};

/**
 * An ordered collection of RegistryEntry records keyed by SoC name
 * and model name.
 */
class DeviceRegistry
{
  public:
    DeviceRegistry() = default;

    /** Append an entry (keys: spec.socName and spec.model). */
    void add(RegistryEntry entry);

    /** Look up by SoC name ("SD-800") or model name ("Nexus 5"). */
    const RegistryEntry *find(const std::string &name) const;

    /** Like find(), but fatal when the name is unknown. */
    const RegistryEntry &at(const std::string &name) const;

    /**
     * Find a unit by id ("bin-0", "dev-363") across all entries, or by
     * the qualified form "SD-820:unit-3". Returns a null entry when
     * not found.
     */
    UnitRef findUnit(const std::string &id) const;

    const std::vector<RegistryEntry> &entries() const { return _entries; }

    /** SoC names of the entries flagged inStudy, registry order. */
    std::vector<std::string> studySocNames() const;

    /**
     * The built-in catalog: the paper's five models (calibrated so the
     * protocol lands inside the Table II bands; see
     * tests/test_calibration.cc) plus the SD-835 extension.
     */
    static const DeviceRegistry &builtin();

  private:
    std::vector<RegistryEntry> _entries;
};

/** Build every calibrated unit of an entry's fleet. */
Fleet buildFleet(const RegistryEntry &entry);

} // namespace pvar

#endif // PVAR_DEVICE_REGISTRY_HH
