/**
 * @file
 * Tests for the study protocol reduction logic.
 */

#include <gtest/gtest.h>

#include <memory>

#include "accubench/protocol.hh"
#include "fault/fault.hh"
#include "sim/logging.hh"

namespace pvar
{
namespace
{

ExperimentResult
synthetic(const std::string &unit, std::vector<double> scores,
          std::vector<double> energies)
{
    ExperimentResult r;
    r.unitId = unit;
    r.model = "Test Phone";
    r.socName = "SD-TEST";
    for (std::size_t i = 0; i < scores.size(); ++i) {
        IterationResult it;
        it.score = scores[i];
        it.workloadEnergy = Joules(energies[i]);
        r.iterations.push_back(it);
    }
    return r;
}

TEST(Protocol, ReduceComputesPaperMetrics)
{
    // Two units: A scores 1000 (uses 500 J unconstrained, 300 J
    // fixed); B scores 860 and uses 360 J fixed.
    std::vector<ExperimentResult> unc = {
        synthetic("A", {1000, 1000}, {500, 500}),
        synthetic("B", {860, 860}, {520, 520}),
    };
    std::vector<ExperimentResult> fix = {
        synthetic("A", {600, 600}, {300, 300}),
        synthetic("B", {600, 600}, {360, 360}),
    };
    SocStudy s = reduceSocStudy("SD-TEST", "Test Phone", unc, fix);

    EXPECT_EQ(s.units.size(), 2u);
    // Perf variation: (1000 - 860) / 1000 = 14%.
    EXPECT_NEAR(s.perfVariationPercent, 14.0, 1e-9);
    // Energy variation: (360 - 300) / 300 = 20%.
    EXPECT_NEAR(s.energyVariationPercent, 20.0, 1e-9);
    // Fixed scores identical -> 0% spread.
    EXPECT_NEAR(s.fixedPerfSpreadPercent, 0.0, 1e-12);
    // Efficiency: mean of score / (E/3600).
    double eff_a = 1000.0 / (500.0 / 3600.0);
    double eff_b = 860.0 / (520.0 / 3600.0);
    EXPECT_NEAR(s.efficiencyIterPerWh, 0.5 * (eff_a + eff_b), 1e-6);
}

TEST(Protocol, ReduceTracksPerUnitOutcomes)
{
    std::vector<ExperimentResult> unc = {
        synthetic("A", {100, 102}, {50, 52})};
    std::vector<ExperimentResult> fix = {
        synthetic("A", {60, 60}, {30, 31})};
    SocStudy s = reduceSocStudy("SD-TEST", "Test Phone", unc, fix);

    ASSERT_EQ(s.units.size(), 1u);
    const UnitOutcome &u = s.units[0];
    EXPECT_EQ(u.unitId, "A");
    EXPECT_NEAR(u.meanScore, 101.0, 1e-9);
    EXPECT_NEAR(u.meanFixedEnergyJ, 30.5, 1e-9);
    EXPECT_GT(u.scoreRsdPercent, 0.0);
    EXPECT_GT(u.fixedEnergyRsdPercent, 0.0);
}

TEST(Protocol, ReduceMismatchedListsDie)
{
    std::vector<ExperimentResult> unc = {
        synthetic("A", {100}, {50})};
    std::vector<ExperimentResult> fix;
    EXPECT_DEATH(reduceSocStudy("SD-TEST", "m", unc, fix), "");
}

TEST(Protocol, StudyConfigDefaultsMatchPaper)
{
    StudyConfig cfg;
    EXPECT_EQ(cfg.iterations, 5);
    EXPECT_DOUBLE_EQ(cfg.thermabox.target.value(), 26.0);
    EXPECT_DOUBLE_EQ(cfg.thermabox.deadband, 0.5);
    EXPECT_EQ(cfg.accubench.warmupDuration, Time::minutes(3));
    EXPECT_EQ(cfg.accubench.workloadDuration, Time::minutes(5));
    EXPECT_EQ(cfg.accubench.cooldownPoll, Time::sec(5));
    EXPECT_EQ(cfg.jobs, 1); // library default stays serial
}

/** A shortened study config so the determinism check stays fast. */
StudyConfig
quickStudyConfig(int jobs)
{
    StudyConfig cfg;
    cfg.iterations = 1;
    cfg.jobs = jobs;
    cfg.accubench.warmupDuration = Time::sec(20);
    cfg.accubench.workloadDuration = Time::sec(30);
    cfg.accubench.cooldownTimeout = Time::minutes(5);
    return cfg;
}

void
expectStudiesBitIdentical(const SocStudy &a, const SocStudy &b)
{
    EXPECT_EQ(a.socName, b.socName);
    EXPECT_EQ(a.model, b.model);
    // EXPECT_EQ on doubles is exact equality: the parallel run must be
    // bit-identical to the serial one, not merely close.
    EXPECT_EQ(a.perfVariationPercent, b.perfVariationPercent);
    EXPECT_EQ(a.energyVariationPercent, b.energyVariationPercent);
    EXPECT_EQ(a.fixedPerfSpreadPercent, b.fixedPerfSpreadPercent);
    EXPECT_EQ(a.meanScoreRsdPercent, b.meanScoreRsdPercent);
    EXPECT_EQ(a.efficiencyIterPerWh, b.efficiencyIterPerWh);
    ASSERT_EQ(a.units.size(), b.units.size());
    for (std::size_t i = 0; i < a.units.size(); ++i) {
        const UnitOutcome &ua = a.units[i];
        const UnitOutcome &ub = b.units[i];
        EXPECT_EQ(ua.unitId, ub.unitId);
        EXPECT_EQ(ua.meanScore, ub.meanScore);
        EXPECT_EQ(ua.scoreRsdPercent, ub.scoreRsdPercent);
        EXPECT_EQ(ua.meanUnconstrainedEnergyJ,
                  ub.meanUnconstrainedEnergyJ);
        EXPECT_EQ(ua.meanFixedEnergyJ, ub.meanFixedEnergyJ);
        EXPECT_EQ(ua.fixedEnergyRsdPercent, ub.fixedEnergyRsdPercent);
        EXPECT_EQ(ua.meanFixedScore, ub.meanFixedScore);
        EXPECT_EQ(ua.fixedScoreRsdPercent, ub.fixedScoreRsdPercent);
        EXPECT_EQ(ua.unconstrainedStatus, ub.unconstrainedStatus);
        EXPECT_EQ(ua.fixedStatus, ub.fixedStatus);
        EXPECT_EQ(ua.unconstrainedAttempts, ub.unconstrainedAttempts);
        EXPECT_EQ(ua.fixedAttempts, ub.fixedAttempts);
        EXPECT_EQ(ua.quarantined, ub.quarantined);
    }
    EXPECT_EQ(a.quarantinedUnits, b.quarantinedUnits);
}

TEST(Protocol, ParallelStudyIsBitIdenticalToSerial)
{
    LogLevel old = setLogLevel(LogLevel::Quiet);
    SocStudy serial = runSocStudy("SD-805", quickStudyConfig(1));
    SocStudy parallel = runSocStudy("SD-805", quickStudyConfig(8));
    setLogLevel(old);
    expectStudiesBitIdentical(serial, parallel);
}

// ---------------------------------------------------------------------
// Supervised studies: classification, retry, quarantine, determinism.
// ---------------------------------------------------------------------

/** Install a plan for one test; always uninstalls on scope exit. */
class PlanGuard
{
  public:
    explicit PlanGuard(FaultPlan plan)
    {
        installFaultPlan(
            std::make_shared<FaultPlan>(std::move(plan)));
    }
    ~PlanGuard() { clearFaultPlan(); }
};

/** A plan whose only rule faults experiment.run. */
FaultPlan
experimentFaultPlan(std::uint64_t seed, FaultKind kind, double p)
{
    FaultPlan plan(seed);
    FaultRule rule;
    rule.site = FaultSite::ExperimentRun;
    rule.kind = kind;
    rule.probability = p;
    plan.addRule(rule);
    return plan;
}

TEST(Classify, AcceptsAHealthyExperiment)
{
    ExperimentConfig cfg;
    ExperimentResult r = synthetic("A", {100, 100}, {10, 10});
    for (auto &it : r.iterations) {
        it.cooldownReachedTarget = true;
        it.tempAtWorkloadStart = Celsius(31.5);
        it.peakWorkloadTemp = Celsius(70.0);
    }
    EXPECT_EQ(classifyExperiment(r, cfg, ValidityGate{}),
              ExperimentStatus::Ok);
}

TEST(Classify, RejectsCooldownTimeoutHotStartAndRunaway)
{
    ExperimentConfig cfg; // cooldownTarget 32 C
    ValidityGate gate;    // +3 C margin, 120 C peak bound
    auto healthy = [] {
        ExperimentResult r = synthetic("A", {100}, {10});
        r.iterations[0].cooldownReachedTarget = true;
        r.iterations[0].tempAtWorkloadStart = Celsius(31.5);
        r.iterations[0].peakWorkloadTemp = Celsius(70.0);
        return r;
    };

    ExperimentResult timed_out = healthy();
    timed_out.iterations[0].cooldownReachedTarget = false;
    EXPECT_EQ(classifyExperiment(timed_out, cfg, gate),
              ExperimentStatus::InvalidRun);
    // ... unless the gate is told not to care.
    ValidityGate lax = gate;
    lax.requireCooldownTarget = false;
    EXPECT_EQ(classifyExperiment(timed_out, cfg, lax),
              ExperimentStatus::Ok);

    ExperimentResult hot_start = healthy();
    hot_start.iterations[0].tempAtWorkloadStart = Celsius(35.5);
    EXPECT_EQ(classifyExperiment(hot_start, cfg, gate),
              ExperimentStatus::InvalidRun);

    ExperimentResult runaway = healthy();
    runaway.iterations[0].peakWorkloadTemp = Celsius(130.0);
    EXPECT_EQ(classifyExperiment(runaway, cfg, gate),
              ExperimentStatus::InvalidRun);
}

TEST(Protocol, ReduceExcludesQuarantinedUnitsFromAggregates)
{
    std::vector<ExperimentResult> unc = {
        synthetic("A", {1000, 1000}, {500, 500}),
        synthetic("B", {860, 860}, {520, 520}),
    };
    std::vector<ExperimentResult> fix = {
        synthetic("A", {600, 600}, {300, 300}),
        synthetic("B", {600, 600}, {360, 360}),
    };
    SocStudy full = reduceSocStudy("SD-TEST", "Test Phone", unc, fix);

    // Bench unit B: the aggregates must match a study of A alone.
    unc[1] = ExperimentResult{};
    unc[1].unitId = "B";
    unc[1].status = ExperimentStatus::TransientFault;
    unc[1].attempts = 3;
    unc[1].quarantined = true;
    SocStudy benched =
        reduceSocStudy("SD-TEST", "Test Phone", unc, fix);

    EXPECT_EQ(benched.units.size(), 2u);
    EXPECT_EQ(benched.quarantinedUnits, 1u);
    EXPECT_TRUE(benched.units[1].quarantined);
    EXPECT_EQ(benched.units[1].unconstrainedStatus,
              ExperimentStatus::TransientFault);
    EXPECT_EQ(benched.units[1].unconstrainedAttempts, 3u);

    std::vector<ExperimentResult> only_a_unc = {unc[0]};
    std::vector<ExperimentResult> only_a_fix = {fix[0]};
    SocStudy only_a =
        reduceSocStudy("SD-TEST", "Test Phone", only_a_unc,
                       only_a_fix);
    EXPECT_EQ(benched.perfVariationPercent,
              only_a.perfVariationPercent);
    EXPECT_EQ(benched.energyVariationPercent,
              only_a.energyVariationPercent);
    EXPECT_EQ(benched.efficiencyIterPerWh,
              only_a.efficiencyIterPerWh);
    EXPECT_EQ(full.quarantinedUnits, 0u);
}

TEST(Supervised, FaultedStudyIsBitIdenticalAcrossJobs)
{
    LogLevel old = setLogLevel(LogLevel::Quiet);
    FaultPlan plan =
        experimentFaultPlan(2024, FaultKind::Transient, 0.5);
    SocStudy serial, parallel;
    {
        PlanGuard guard{FaultPlan(plan)};
        serial = runSocStudy("SD-805", quickStudyConfig(1));
    }
    {
        PlanGuard guard{FaultPlan(plan)};
        parallel = runSocStudy("SD-805", quickStudyConfig(8));
    }
    setLogLevel(old);
    expectStudiesBitIdentical(serial, parallel);

    // With p=0.5 per attempt the plan must actually have bitten:
    // at least one experiment needed a retry.
    std::uint32_t total_attempts = 0;
    for (const UnitOutcome &u : serial.units)
        total_attempts += u.unconstrainedAttempts + u.fixedAttempts;
    EXPECT_GT(total_attempts, 2 * serial.units.size());
}

TEST(Supervised, ExhaustedBudgetQuarantinesTheUnit)
{
    LogLevel old = setLogLevel(LogLevel::Quiet);
    PlanGuard guard(
        experimentFaultPlan(1, FaultKind::Transient, 1.0));
    StudyConfig cfg = quickStudyConfig(1);
    const RegistryEntry &entry = DeviceRegistry::builtin().at("SD-805");
    SocStudy s = runUnitStudy(entry, 0, cfg);
    setLogLevel(old);

    ASSERT_EQ(s.units.size(), 1u);
    EXPECT_TRUE(s.units[0].quarantined);
    EXPECT_EQ(s.quarantinedUnits, 1u);
    EXPECT_EQ(s.units[0].unconstrainedStatus,
              ExperimentStatus::TransientFault);
    EXPECT_EQ(s.units[0].unconstrainedAttempts,
              static_cast<std::uint32_t>(cfg.retry.maxAttempts));
    // Aggregates over zero healthy units are zero, never NaN.
    EXPECT_EQ(s.perfVariationPercent, 0.0);
    EXPECT_EQ(s.efficiencyIterPerWh, 0.0);
}

TEST(Supervised, PermanentFaultAlwaysPropagates)
{
    LogLevel old = setLogLevel(LogLevel::Quiet);
    PlanGuard guard(
        experimentFaultPlan(1, FaultKind::Permanent, 1.0));
    EXPECT_THROW(runSocStudy("SD-805", quickStudyConfig(1)),
                 PermanentFaultError);
    setLogLevel(old);
}

TEST(Supervised, NoQuarantineEscalatesExhaustion)
{
    LogLevel old = setLogLevel(LogLevel::Quiet);
    PlanGuard guard(
        experimentFaultPlan(1, FaultKind::Transient, 1.0));
    StudyConfig cfg = quickStudyConfig(1);
    cfg.retry.quarantine = false;
    const RegistryEntry &entry = DeviceRegistry::builtin().at("SD-805");
    EXPECT_THROW(runUnitStudy(entry, 0, cfg), PermanentFaultError);
    setLogLevel(old);
}

TEST(Supervised, RetriedExperimentRecoversWithFreshAttempt)
{
    // Find a seed whose decision pattern is: task 0 faults on its
    // first attempt only, task 1 never faults. The scan uses the same
    // (scope, count) hash the supervisor does, so the chosen seed is
    // stable by construction.
    auto decides = [](std::uint64_t seed, std::uint64_t task,
                      std::uint64_t attempt) {
        PlanGuard guard(
            experimentFaultPlan(seed, FaultKind::Transient, 0.5));
        FaultScope scope(faultScopeId(task, attempt));
        return faultCheck(FaultSite::ExperimentRun).fired;
    };
    std::uint64_t seed = 0;
    bool found = false;
    for (; seed < 256 && !found; ++seed) {
        found = decides(seed, 0, 0) && !decides(seed, 0, 1) &&
                !decides(seed, 1, 0);
    }
    ASSERT_TRUE(found);
    --seed;

    LogLevel old = setLogLevel(LogLevel::Quiet);
    PlanGuard guard(
        experimentFaultPlan(seed, FaultKind::Transient, 0.5));
    const RegistryEntry &entry = DeviceRegistry::builtin().at("SD-805");
    SocStudy s = runUnitStudy(entry, 0, quickStudyConfig(1));
    setLogLevel(old);

    ASSERT_EQ(s.units.size(), 1u);
    EXPECT_FALSE(s.units[0].quarantined);
    EXPECT_EQ(s.units[0].unconstrainedStatus, ExperimentStatus::Ok);
    EXPECT_EQ(s.units[0].unconstrainedAttempts, 2u)
        << "first attempt faulted, the retry recovered";
    EXPECT_EQ(s.units[0].fixedStatus, ExperimentStatus::Ok);
    EXPECT_EQ(s.units[0].fixedAttempts, 1u);
    EXPECT_GT(s.units[0].meanScore, 0.0);
}

} // namespace
} // namespace pvar
