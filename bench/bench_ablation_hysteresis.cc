/**
 * @file
 * Ablation: thermal-governor hysteresis width (DESIGN.md §6).
 *
 * Hysteresis trades oscillation against mean frequency: a narrow band
 * releases caps quickly (more cap toggling, temperature rides the
 * trip line), a wide band latches mitigation long after the die has
 * cooled (calmer, but slower). This is the mechanism behind the
 * paper's Pixel observation that time-at-temperature alone cannot
 * predict throttling outcomes.
 */

#include <cstdio>

#include "accubench/experiment.hh"
#include "bench_util.hh"
#include "device/catalog.hh"
#include "report/figure.hh"
#include "report/table.hh"
#include "silicon/process_node.hh"
#include "silicon/variation_model.hh"

using namespace pvar;

namespace
{

std::unique_ptr<Device>
nexus5WithHysteresis(double width_c)
{
    DeviceConfig cfg = nexus5Config(3);
    for (auto &trip : cfg.thermalGov.trips)
        trip.clear = trip.trip - Celsius(width_c);
    for (auto &rule : cfg.thermalGov.shutdowns)
        rule.clear = rule.trip - Celsius(width_c + 2.0);

    ProcessNode node = node28nmHPm();
    VariationModel model(node);
    Die die = model.dieAtCorner(+1.25, 0.10, 0.0, "bin-3");
    return std::make_unique<Device>(std::move(cfg), std::move(die));
}

} // namespace

int
main()
{
    benchQuiet();
    std::printf("%s", figureHeader(
        "Ablation: throttle hysteresis width",
        "narrow bands oscillate, wide bands latch mitigation; both "
        "change the delivered mean frequency").c_str());

    const double widths_c[] = {0.5, 1.5, 3.0, 6.0, 10.0};

    Table t({"Hysteresis (C)", "Score", "Mean freq (MHz)",
             "Freq changes", "Time capped"});
    std::vector<double> scores;
    std::vector<int> toggles;

    for (double width : widths_c) {
        auto device = nexus5WithHysteresis(width);
        ExperimentConfig cfg;
        cfg.mode = WorkloadMode::Unconstrained;
        cfg.iterations = 2;
        ExperimentResult r = runExperiment(*device, cfg);

        const auto &freq = r.trace.channel("freq_cpu");
        int changes = 0;
        OnlineSummary mean_freq;
        Time capped = Time::zero(), running = Time::zero();
        for (std::size_t i = 0; i + 1 < freq.size(); ++i) {
            double f = freq.samples()[i].value;
            if (f <= 0)
                continue;
            mean_freq.add(f);
            Time span =
                freq.samples()[i + 1].when - freq.samples()[i].when;
            running += span;
            if (f < 2265.0)
                capped += span;
            if (freq.samples()[i + 1].value > 0 &&
                freq.samples()[i + 1].value != f)
                ++changes;
        }
        scores.push_back(r.meanScore());
        toggles.push_back(changes);
        t.addRow({fmtDouble(width, 1), fmtDouble(r.meanScore(), 1),
                  fmtDouble(mean_freq.mean(), 0),
                  std::to_string(changes),
                  fmtPercent(running > Time::zero()
                                 ? capped / running * 100.0
                                 : 0.0)});
    }
    std::printf("%s", t.render().c_str());

    std::printf("\nSHAPE CHECK:\n");
    shapeCheck(toggles.front() > toggles.back(),
               "narrow hysteresis toggles the cap more often (" +
                   std::to_string(toggles.front()) + " vs " +
                   std::to_string(toggles.back()) + " changes)");
    shapeCheck(scores.front() > scores.back(),
               "wide hysteresis latches caps longer and costs score (" +
                   fmtDouble(scores.front(), 0) + " vs " +
                   fmtDouble(scores.back(), 0) + ")");
    return 0;
}
