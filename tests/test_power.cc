/**
 * @file
 * Tests for the battery, Monsoon, and energy meter.
 */

#include <gtest/gtest.h>

#include "power/battery.hh"
#include "power/energy_meter.hh"
#include "power/monsoon.hh"

namespace pvar
{
namespace
{

TEST(Battery, OcvDecreasesWithDischarge)
{
    Battery b((BatteryParams()));
    double prev = 1e9;
    for (double soc = 1.0; soc >= 0.0; soc -= 0.05) {
        b.setStateOfCharge(soc);
        double v = b.openCircuitVoltage().value();
        EXPECT_LE(v, prev);
        prev = v;
    }
    b.setStateOfCharge(1.0);
    EXPECT_NEAR(b.openCircuitVoltage().value(), 4.35, 1e-9);
    b.setStateOfCharge(0.0);
    EXPECT_NEAR(b.openCircuitVoltage().value(), 3.30, 1e-9);
}

TEST(Battery, TerminalSagsUnderLoad)
{
    Battery b((BatteryParams()));
    Volts open = b.terminalVoltage(Amps(0.0));
    Volts loaded = b.terminalVoltage(Amps(2.0));
    EXPECT_NEAR(open.value() - loaded.value(),
                2.0 * b.internalResistance().value(), 1e-12);
}

TEST(Battery, DrainReducesSoc)
{
    BatteryParams p;
    p.capacityWh = 10.0;
    Battery b(p);
    // Draw ~1 A for one hour: about 4 Wh out of 10.
    for (int i = 0; i < 3600; ++i)
        b.drain(Amps(1.0), Time::sec(1));
    EXPECT_LT(b.stateOfCharge(), 0.65);
    EXPECT_GT(b.stateOfCharge(), 0.50);
}

TEST(Battery, SocNeverGoesNegative)
{
    BatteryParams p;
    p.capacityWh = 0.001;
    Battery b(p);
    b.drain(Amps(5.0), Time::sec(100));
    EXPECT_GE(b.stateOfCharge(), 0.0);
}

TEST(Battery, AgingRaisesResistanceAndCutsCapacity)
{
    BatteryParams fresh_p;
    BatteryParams old_p;
    old_p.age = 1.0;
    Battery fresh(fresh_p), old(old_p);
    EXPECT_NEAR(old.internalResistance().value(),
                2.0 * fresh.internalResistance().value(), 1e-12);
    EXPECT_NEAR(old.effectiveCapacityWh(),
                0.8 * fresh.effectiveCapacityWh(), 1e-12);
    // An aged cell sags more: the LG G5 / iPhone throttling vector.
    EXPECT_LT(old.terminalVoltage(Amps(2.0)).value(),
              fresh.terminalVoltage(Amps(2.0)).value());
}

TEST(Battery, SelfHeatingIsI2R)
{
    Battery b((BatteryParams()));
    double r = b.internalResistance().value();
    EXPECT_NEAR(b.selfHeating(Amps(2.0)).value(), 4.0 * r, 1e-12);
}

TEST(Battery, InvalidConfigDies)
{
    BatteryParams p;
    p.age = 2.0;
    EXPECT_DEATH(Battery b(p), "");
    BatteryParams q;
    q.capacityWh = 0.0;
    EXPECT_DEATH(Battery b(q), "");
    Battery ok((BatteryParams()));
    EXPECT_DEATH(ok.setStateOfCharge(1.5), "");
}

TEST(Monsoon, HoldsProgrammedVoltage)
{
    Monsoon m(Volts(3.85));
    EXPECT_NEAR(m.terminalVoltage(Amps(0.0)).value(), 3.85, 1e-12);
    // Tiny source resistance: small sag at 2 A.
    EXPECT_NEAR(m.terminalVoltage(Amps(2.0)).value(), 3.85 - 0.024,
                1e-9);
    m.setVout(Volts(4.40));
    EXPECT_NEAR(m.terminalVoltage(Amps(0.0)).value(), 4.40, 1e-12);
}

TEST(Monsoon, CaptureIntegratesEnergy)
{
    Monsoon m(Volts(4.0), Ohms(0.0));
    m.startCapture(Time::zero());
    // 1 A at 4 V for 10 s = 40 J.
    for (int i = 0; i < 100; ++i)
        m.drain(Amps(1.0), Time::msec(100));
    CaptureResult r = m.stopCapture(Time::sec(10));
    EXPECT_NEAR(r.energy.value(), 40.0, 1e-9);
    EXPECT_NEAR(r.averagePower.value(), 4.0, 1e-9);
    EXPECT_NEAR(r.peakCurrent.value(), 1.0, 1e-12);
    EXPECT_EQ(r.samples.size(), 100u);
    EXPECT_EQ(r.duration, Time::sec(10));
}

TEST(Monsoon, DrainOutsideCaptureCountsLifetimeOnly)
{
    Monsoon m(Volts(4.0), Ohms(0.0));
    m.drain(Amps(1.0), Time::sec(1));
    m.startCapture(Time::sec(1));
    m.drain(Amps(1.0), Time::sec(1));
    CaptureResult r = m.stopCapture(Time::sec(2));
    EXPECT_NEAR(r.energy.value(), 4.0, 1e-9);
    EXPECT_NEAR(m.lifetimeEnergy().value(), 8.0, 1e-9);
}

TEST(Monsoon, StopWithoutStartDies)
{
    Monsoon m(Volts(4.0));
    EXPECT_DEATH((void)m.stopCapture(Time::sec(1)), "");
}

TEST(PowerSupply, OperatingCurrentSolvesFixedPoint)
{
    // I * V(I) must equal the demand.
    Battery b((BatteryParams()));
    Watts demand(5.0);
    Amps i = b.operatingCurrent(demand);
    EXPECT_NEAR((b.terminalVoltage(i) * i).value(), 5.0, 1e-6);

    Monsoon m(Volts(3.85));
    Amps im = m.operatingCurrent(demand);
    EXPECT_NEAR((m.terminalVoltage(im) * im).value(), 5.0, 1e-6);
}

TEST(PowerSupply, ZeroDemandZeroCurrent)
{
    Monsoon m(Volts(3.85));
    EXPECT_DOUBLE_EQ(m.operatingCurrent(Watts(0.0)).value(), 0.0);
}

TEST(EnergyMeter, AccumulatesAndSlices)
{
    EnergyMeter meter;
    meter.beginSpan("warmup", Time::zero());
    for (int i = 0; i < 10; ++i)
        meter.accumulate(Watts(2.0), Time::sec(i + 1), Time::sec(1));
    meter.beginSpan("workload", Time::sec(10)); // closes "warmup"
    for (int i = 0; i < 5; ++i)
        meter.accumulate(Watts(4.0), Time::sec(11 + i), Time::sec(1));
    meter.endSpan(Time::sec(15));

    EXPECT_NEAR(meter.total().value(), 40.0, 1e-9);
    EXPECT_NEAR(meter.energyOf("warmup").value(), 20.0, 1e-9);
    EXPECT_NEAR(meter.energyOf("workload").value(), 20.0, 1e-9);
    EXPECT_EQ(meter.spans().size(), 2u);
}

TEST(EnergyMeter, RepeatedLabelsSum)
{
    EnergyMeter meter;
    for (int rep = 0; rep < 3; ++rep) {
        meter.beginSpan("w", Time::sec(rep * 2));
        meter.accumulate(Watts(1.0), Time::sec(rep * 2 + 1), Time::sec(1));
        meter.endSpan(Time::sec(rep * 2 + 1));
    }
    EXPECT_NEAR(meter.energyOf("w").value(), 3.0, 1e-9);
}

TEST(EnergyMeter, ResetForgets)
{
    EnergyMeter meter;
    meter.accumulate(Watts(5.0), Time::sec(1), Time::sec(1));
    meter.reset();
    EXPECT_DOUBLE_EQ(meter.total().value(), 0.0);
    EXPECT_TRUE(meter.spans().empty());
}

} // namespace
} // namespace pvar
