#include "service/http.hh"

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <cstring>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include "sim/logging.hh"
#include "sim/strfmt.hh"

namespace pvar
{

namespace
{

std::string
toLower(std::string s)
{
    std::transform(s.begin(), s.end(), s.begin(), [](unsigned char c) {
        return static_cast<char>(std::tolower(c));
    });
    return s;
}

std::string
trim(const std::string &s)
{
    std::size_t b = s.find_first_not_of(" \t");
    if (b == std::string::npos)
        return "";
    std::size_t e = s.find_last_not_of(" \t");
    return s.substr(b, e - b + 1);
}

void
setIoTimeout(int fd, int timeout_ms)
{
    timeval tv{};
    tv.tv_sec = timeout_ms / 1000;
    tv.tv_usec = (timeout_ms % 1000) * 1000;
    setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
}

/** send() the whole buffer; MSG_NOSIGNAL so dead peers don't SIGPIPE. */
bool
sendAll(int fd, const char *data, std::size_t len)
{
    while (len > 0) {
        ssize_t n = ::send(fd, data, len, MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        data += n;
        len -= static_cast<std::size_t>(n);
    }
    return true;
}

/**
 * Parse the request head (request line + headers) out of @p head.
 * Body handling is the caller's job.
 */
bool
parseHead(const std::string &head, HttpRequest &req, std::string &error)
{
    std::size_t line_end = head.find("\r\n");
    if (line_end == std::string::npos) {
        error = "malformed request line";
        return false;
    }
    std::string request_line = head.substr(0, line_end);
    std::size_t sp1 = request_line.find(' ');
    std::size_t sp2 =
        sp1 == std::string::npos ? sp1 : request_line.find(' ', sp1 + 1);
    if (sp1 == std::string::npos || sp2 == std::string::npos) {
        error = "malformed request line";
        return false;
    }
    req.method = request_line.substr(0, sp1);
    req.path = request_line.substr(sp1 + 1, sp2 - sp1 - 1);
    req.version = request_line.substr(sp2 + 1);
    if (req.version.rfind("HTTP/1.", 0) != 0) {
        error = strfmt("unsupported protocol '%s'",
                       req.version.c_str());
        return false;
    }

    std::size_t pos = line_end + 2;
    while (pos < head.size()) {
        std::size_t eol = head.find("\r\n", pos);
        if (eol == std::string::npos)
            eol = head.size();
        std::string line = head.substr(pos, eol - pos);
        pos = eol + 2;
        if (line.empty())
            break;
        std::size_t colon = line.find(':');
        if (colon == std::string::npos) {
            error = "malformed header line";
            return false;
        }
        req.headers.emplace_back(toLower(trim(line.substr(0, colon))),
                                 trim(line.substr(colon + 1)));
    }
    return true;
}

} // namespace

const std::string &
HttpRequest::header(const std::string &name) const
{
    static const std::string empty;
    for (const auto &[k, v] : headers) {
        if (k == name)
            return v;
    }
    return empty;
}

const std::string &
HttpResponse::header(const std::string &name) const
{
    static const std::string empty;
    for (const auto &[k, v] : headers) {
        if (k == name)
            return v;
    }
    return empty;
}

const char *
httpStatusReason(int status)
{
    switch (status) {
      case 200:
        return "OK";
      case 400:
        return "Bad Request";
      case 404:
        return "Not Found";
      case 405:
        return "Method Not Allowed";
      case 413:
        return "Payload Too Large";
      case 429:
        return "Too Many Requests";
      case 500:
        return "Internal Server Error";
      case 503:
        return "Service Unavailable";
      default:
        return "Unknown";
    }
}

bool
readHttpRequest(int fd, const HttpLimits &limits, HttpRequest &req,
                std::string &error)
{
    setIoTimeout(fd, limits.ioTimeoutMs);

    std::string buf;
    std::size_t head_end = std::string::npos;
    char chunk[4096];
    while (true) {
        head_end = buf.find("\r\n\r\n");
        if (head_end != std::string::npos)
            break;
        if (buf.size() > limits.maxHeaderBytes) {
            error = "request headers too large";
            return false;
        }
        ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
        if (n < 0 && errno == EINTR)
            continue;
        if (n <= 0) {
            error = "connection closed mid-request";
            return false;
        }
        buf.append(chunk, static_cast<std::size_t>(n));
    }

    if (!parseHead(buf.substr(0, head_end + 2), req, error))
        return false;

    std::size_t body_len = 0;
    const std::string &cl = req.header("content-length");
    if (!cl.empty()) {
        long long v = 0;
        if (!parseIntStrict(cl, v) || v < 0) {
            error = "bad Content-Length";
            return false;
        }
        body_len = static_cast<std::size_t>(v);
    }
    if (body_len > limits.maxBodyBytes) {
        error = "request body too large";
        return false;
    }
    if (!req.header("transfer-encoding").empty()) {
        error = "chunked transfer encoding not supported";
        return false;
    }

    req.body = buf.substr(head_end + 4);
    while (req.body.size() < body_len) {
        ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
        if (n < 0 && errno == EINTR)
            continue;
        if (n <= 0) {
            error = "connection closed mid-body";
            return false;
        }
        req.body.append(chunk, static_cast<std::size_t>(n));
    }
    if (req.body.size() > body_len)
        req.body.resize(body_len); // ignore pipelined bytes
    return true;
}

bool
writeHttpResponse(int fd, const HttpResponse &resp)
{
    std::string out = strfmt("HTTP/1.1 %d %s\r\n", resp.status,
                             httpStatusReason(resp.status));
    out += "Content-Type: " + resp.contentType + "\r\n";
    out += strfmt("Content-Length: %zu\r\n", resp.body.size());
    for (const auto &[k, v] : resp.headers)
        out += k + ": " + v + "\r\n";
    out += "Connection: close\r\n\r\n";
    out += resp.body;
    return sendAll(fd, out.data(), out.size());
}

HttpResponse
httpRequest(const std::string &host, int port,
            const std::string &method, const std::string &path,
            const std::string &body, const HttpLimits &limits)
{
    int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0)
        fatal("httpRequest: socket: %s", std::strerror(errno));
    setIoTimeout(fd, limits.ioTimeoutMs);

    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<std::uint16_t>(port));
    if (inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
        ::close(fd);
        fatal("httpRequest: bad address '%s'", host.c_str());
    }
    if (::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                  sizeof(addr)) < 0) {
        ::close(fd);
        fatal("httpRequest: connect %s:%d: %s", host.c_str(), port,
              std::strerror(errno));
    }

    std::string out = method + " " + path + " HTTP/1.1\r\n";
    out += "Host: " + host + strfmt(":%d", port) + "\r\n";
    if (!body.empty() || method == "POST") {
        out += "Content-Type: application/json\r\n";
        out += strfmt("Content-Length: %zu\r\n", body.size());
    }
    out += "Connection: close\r\n\r\n";
    out += body;
    if (!sendAll(fd, out.data(), out.size())) {
        ::close(fd);
        fatal("httpRequest: send %s:%d: %s", host.c_str(), port,
              std::strerror(errno));
    }

    std::string in;
    char chunk[4096];
    while (true) {
        ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
        if (n < 0 && errno == EINTR)
            continue;
        if (n <= 0)
            break;
        in.append(chunk, static_cast<std::size_t>(n));
    }
    ::close(fd);

    HttpResponse resp;
    resp.status = 0;
    std::size_t head_end = in.find("\r\n\r\n");
    std::size_t line_end = in.find("\r\n");
    if (head_end == std::string::npos || line_end == std::string::npos)
        return resp;
    // Status line: HTTP/1.1 SP code SP reason.
    std::string status_line = in.substr(0, line_end);
    std::size_t sp = status_line.find(' ');
    if (sp == std::string::npos)
        return resp;
    long long code = 0;
    if (!parseIntStrict(status_line.substr(sp + 1, 3), code))
        return resp;
    resp.status = static_cast<int>(code);
    std::size_t pos = line_end + 2;
    while (pos < head_end) {
        std::size_t eol = in.find("\r\n", pos);
        std::string line = in.substr(pos, eol - pos);
        pos = eol + 2;
        std::size_t colon = line.find(':');
        if (colon != std::string::npos) {
            resp.headers.emplace_back(toLower(trim(line.substr(0, colon))),
                                      trim(line.substr(colon + 1)));
        }
    }
    resp.body = in.substr(head_end + 4);
    return resp;
}

} // namespace pvar
