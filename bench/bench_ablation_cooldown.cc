/**
 * @file
 * Ablation: the cooldown target temperature (DESIGN.md §6).
 *
 * The cooldown phase pins the thermal state at which every scored
 * workload begins. A higher target shortens the wait but starts the
 * workload hotter (earlier throttling, lower score); skipping the
 * cooldown entirely couples consecutive iterations. The sweep shows
 * score level and repeatability against the target.
 */

#include <cstdio>

#include "accubench/experiment.hh"
#include "bench_util.hh"
#include "device/catalog.hh"
#include "report/figure.hh"
#include "report/table.hh"

using namespace pvar;

int
main()
{
    benchQuiet();
    std::printf("%s", figureHeader(
        "Ablation: cooldown target temperature",
        "the cooldown normalizes the starting thermal state of every "
        "scored iteration").c_str());

    const double targets_c[] = {30.0, 34.0, 38.0, 44.0, 50.0};

    Table t({"Target (C)", "Mean score", "Score RSD",
             "Mean cooldown (s)", "Start temp (C)"});
    std::vector<double> scores;

    for (double target : targets_c) {
        auto device =
            makeNexus5(3, UnitCorner{"bin-3", +1.25, +0.10, 0.0});
        ExperimentConfig cfg;
        cfg.mode = WorkloadMode::Unconstrained;
        cfg.iterations = 3;
        cfg.accubench.cooldownTarget = Celsius(target);
        ExperimentResult r = runExperiment(*device, cfg);

        OnlineSummary cooldown, start;
        for (const auto &it : r.iterations) {
            cooldown.add(it.cooldownTime.toSec());
            start.add(it.tempAtWorkloadStart.value());
        }
        scores.push_back(r.meanScore());
        t.addRow({fmtDouble(target, 0), fmtDouble(r.meanScore(), 1),
                  fmtPercent(r.scoreRsdPercent(), 2),
                  fmtDouble(cooldown.mean(), 0),
                  fmtDouble(start.mean(), 1)});
    }
    std::printf("%s", t.render().c_str());

    std::printf("\nSHAPE CHECK:\n");
    shapeCheck(scores.front() > scores.back(),
               "starting cooler buys a higher score (" +
                   fmtDouble(scores.front(), 0) + " at 30C vs " +
                   fmtDouble(scores.back(), 0) + " at 50C) - the "
                   "refrigerator effect of Guo et al.");
    bool monotone = true;
    for (std::size_t i = 0; i + 1 < scores.size(); ++i)
        monotone &= scores[i] >= scores[i + 1] * 0.995;
    shapeCheck(monotone, "score decreases monotonically with the "
                         "starting temperature");
    return 0;
}
