/**
 * @file
 * Little-endian byte stream writer/reader.
 *
 * The durability layer's codec primitives, hoisted out of store/codec
 * so component state serialization (live-point checkpoints) and the
 * result codec share one bit-exact encoding: every double is written
 * as its raw IEEE-754 bit pattern, every integer little-endian, every
 * string length-prefixed. Reading is total — each read reports
 * success instead of throwing — so corrupt bytes degrade to a decode
 * failure, never UB.
 */

#ifndef PVAR_SIM_BYTES_HH
#define PVAR_SIM_BYTES_HH

#include <cstdint>
#include <cstring>
#include <string>

namespace pvar
{

/** Append-only little-endian byte sink. */
class ByteWriter
{
  public:
    void
    u8(std::uint8_t v)
    {
        _out.push_back(static_cast<char>(v));
    }

    void
    u32(std::uint32_t v)
    {
        for (int i = 0; i < 4; ++i)
            _out.push_back(static_cast<char>(v >> (8 * i)));
    }

    void
    u64(std::uint64_t v)
    {
        for (int i = 0; i < 8; ++i)
            _out.push_back(static_cast<char>(v >> (8 * i)));
    }

    void
    i64(std::int64_t v)
    {
        u64(static_cast<std::uint64_t>(v));
    }

    void
    f64(double v)
    {
        std::uint64_t bits;
        std::memcpy(&bits, &v, sizeof(bits));
        u64(bits);
    }

    void
    str(const std::string &s)
    {
        u32(static_cast<std::uint32_t>(s.size()));
        _out.append(s);
    }

    /** Bytes written so far. */
    std::size_t size() const { return _out.size(); }

    std::string take() { return std::move(_out); }

  private:
    std::string _out;
};

/** Cursor over immutable bytes; every read reports success. */
class ByteReader
{
  public:
    explicit ByteReader(const std::string &bytes) : _bytes(bytes) {}

    bool
    u8(std::uint8_t &v)
    {
        if (_pos + 1 > _bytes.size())
            return false;
        v = static_cast<std::uint8_t>(_bytes[_pos++]);
        return true;
    }

    bool
    u32(std::uint32_t &v)
    {
        if (_pos + 4 > _bytes.size())
            return false;
        v = 0;
        for (int i = 0; i < 4; ++i)
            v |= static_cast<std::uint32_t>(
                     static_cast<unsigned char>(_bytes[_pos + i]))
                 << (8 * i);
        _pos += 4;
        return true;
    }

    bool
    u64(std::uint64_t &v)
    {
        if (_pos + 8 > _bytes.size())
            return false;
        v = 0;
        for (int i = 0; i < 8; ++i)
            v |= static_cast<std::uint64_t>(
                     static_cast<unsigned char>(_bytes[_pos + i]))
                 << (8 * i);
        _pos += 8;
        return true;
    }

    bool
    i64(std::int64_t &v)
    {
        std::uint64_t u = 0;
        if (!u64(u))
            return false;
        v = static_cast<std::int64_t>(u);
        return true;
    }

    bool
    f64(double &v)
    {
        std::uint64_t bits = 0;
        if (!u64(bits))
            return false;
        std::memcpy(&v, &bits, sizeof(v));
        return true;
    }

    bool
    str(std::string &s)
    {
        std::uint32_t len = 0;
        if (!u32(len) || _pos + len > _bytes.size())
            return false;
        s.assign(_bytes, _pos, len);
        _pos += len;
        return true;
    }

    /** Skip @p n bytes. */
    bool
    skip(std::size_t n)
    {
        if (_pos + n > _bytes.size())
            return false;
        _pos += n;
        return true;
    }

    /** Current cursor position. */
    std::size_t pos() const { return _pos; }

    /** Bytes remaining past the cursor. */
    std::size_t remaining() const { return _bytes.size() - _pos; }

    bool done() const { return _pos == _bytes.size(); }

  private:
    const std::string &_bytes;
    std::size_t _pos = 0;
};

/**
 * 64-bit FNV-1a digest of @p bytes.
 *
 * The self-check serialized state carries inside its own framing, so
 * a flipped payload byte is caught at decode time even when the
 * transport (an in-memory cache, a foreign store) has no checksum of
 * its own. Not cryptographic — it defends against corruption, not
 * adversaries.
 */
inline std::uint64_t
fnv1a64(const char *data, std::size_t size)
{
    std::uint64_t h = 1469598103934665603ull;
    for (std::size_t i = 0; i < size; ++i) {
        h ^= static_cast<unsigned char>(data[i]);
        h *= 1099511628211ull;
    }
    return h;
}

} // namespace pvar

#endif // PVAR_SIM_BYTES_HH
