#include "silicon/timing.hh"

#include <cmath>

namespace pvar
{

MegaHertz
alphaPowerFmax(Volts v, Volts vth, double alpha, double speed_constant)
{
    double overdrive = v.value() - vth.value();
    if (overdrive <= 0.0 || v.value() <= 0.0)
        return MegaHertz(0.0);
    return MegaHertz(speed_constant * std::pow(overdrive, alpha) /
                     v.value());
}

Volts
minVoltageForFreq(MegaHertz target, Volts vth, double alpha,
                  double speed_constant, Volts v_hi)
{
    // f_max is monotonically increasing in V over the region of
    // interest (dV term dominates the 1/V factor for V > Vth), so
    // bisection is safe.
    double lo = vth.value() + 1e-4;
    double hi = v_hi.value();
    if (alphaPowerFmax(Volts(hi), vth, alpha, speed_constant) < target)
        return v_hi;

    for (int i = 0; i < 60; ++i) {
        double mid = 0.5 * (lo + hi);
        if (alphaPowerFmax(Volts(mid), vth, alpha, speed_constant) >=
            target) {
            hi = mid;
        } else {
            lo = mid;
        }
    }
    return Volts(hi);
}

} // namespace pvar
