#include "accubench/experiment.hh"

#include <utility>

#include "accubench/batch.hh"

namespace pvar
{

ExperimentResult
runExperiment(Device &device, const ExperimentConfig &cfg)
{
    // The single-die path is a width-1 cohort: one code path for
    // every batch size keeps B=1 bit-identical to batched runs by
    // construction (see accubench/batch.hh for the contract).
    std::vector<CohortTask> tasks(1);
    tasks[0].device = &device;
    tasks[0].cfg = cfg;
    std::vector<ExperimentResult> results = runExperimentCohort(tasks);
    return std::move(results.front());
}

} // namespace pvar
