/**
 * @file
 * Tests for the experiment runner (thermabox + supply + N iterations).
 */

#include <gtest/gtest.h>

#include "accubench/experiment.hh"
#include "device/catalog.hh"

namespace pvar
{
namespace
{

ExperimentConfig
quickConfig()
{
    ExperimentConfig cfg;
    cfg.iterations = 2;
    cfg.accubench.warmupDuration = Time::sec(30);
    cfg.accubench.workloadDuration = Time::sec(60);
    cfg.accubench.cooldownTarget = Celsius(34.0);
    return cfg;
}

TEST(Experiment, RunsRequestedIterations)
{
    auto d = makeNexus5(2, UnitCorner{"x", 0, 0, 0});
    ExperimentResult r = runExperiment(*d, quickConfig());
    ASSERT_EQ(r.iterations.size(), 2u);
    EXPECT_EQ(r.unitId, "x");
    EXPECT_EQ(r.model, "Nexus 5");
    EXPECT_EQ(r.socName, "SD-800");
    for (const auto &it : r.iterations) {
        EXPECT_GT(it.score, 0.0);
        EXPECT_GT(it.workloadEnergy.value(), 0.0);
    }
}

TEST(Experiment, SummariesMatchIterations)
{
    auto d = makeNexus5(2, UnitCorner{"x", 0, 0, 0});
    ExperimentResult r = runExperiment(*d, quickConfig());
    double sum = 0.0;
    for (const auto &it : r.iterations)
        sum += it.score;
    EXPECT_NEAR(r.meanScore(), sum / 2.0, 1e-9);
    EXPECT_GE(r.scoreRsdPercent(), 0.0);
}

TEST(Experiment, FixedFrequencyModePins)
{
    auto d = makeNexus5(2, UnitCorner{"x", 0, 0, 0});
    ExperimentConfig cfg = quickConfig();
    cfg.mode = WorkloadMode::FixedFrequency;
    cfg.fixedFrequency = MegaHertz(960);
    ExperimentResult r = runExperiment(*d, cfg);

    // 4 cores at 960 MHz / 2.6e9 cyc for 60 s.
    double expected = 4.0 * 0.96e9 / 2.6e9 * 60.0;
    for (const auto &it : r.iterations)
        EXPECT_NEAR(it.score, expected, expected * 0.01);
}

TEST(Experiment, UnconstrainedOutscoresFixed)
{
    auto d = makeNexus5(2, UnitCorner{"x", 0, 0, 0});
    ExperimentResult unc = runExperiment(*d, quickConfig());
    ExperimentConfig fix_cfg = quickConfig();
    fix_cfg.mode = WorkloadMode::FixedFrequency;
    fix_cfg.fixedFrequency = MegaHertz(1190);
    ExperimentResult fix = runExperiment(*d, fix_cfg);
    EXPECT_GT(unc.meanScore(), fix.meanScore());
}

TEST(Experiment, MonsoonVoltageChoicesWork)
{
    auto d = makeLgG5(UnitCorner{"g5", 0, 0, 0});

    ExperimentConfig nominal = quickConfig();
    nominal.supply = SupplyChoice::MonsoonNominal; // 3.85 V -> throttled
    ExperimentResult low = runExperiment(*d, nominal);

    ExperimentConfig high = quickConfig();
    high.supply = SupplyChoice::MonsoonExplicit;
    high.monsoonVoltage = Volts(4.40);
    ExperimentResult full = runExperiment(*d, high);

    // The Fig 10 anomaly: nominal-voltage supply loses ~20%.
    EXPECT_LT(low.meanScore(), full.meanScore() * 0.9);
}

TEST(Experiment, BatterySupplyMatchesHighVoltageMonsoon)
{
    auto d = makeLgG5(UnitCorner{"g5", 0, 0, 0});

    ExperimentConfig batt = quickConfig();
    batt.supply = SupplyChoice::Battery;
    batt.batterySoc = 0.95;
    ExperimentResult on_battery = runExperiment(*d, batt);

    ExperimentConfig mon = quickConfig();
    mon.supply = SupplyChoice::MonsoonExplicit;
    mon.monsoonVoltage = Volts(4.40);
    ExperimentResult on_monsoon = runExperiment(*d, mon);

    EXPECT_NEAR(on_battery.meanScore() / on_monsoon.meanScore(), 1.0,
                0.03);
}

TEST(Experiment, TraceCoversWholeRun)
{
    auto d = makeNexus5(2, UnitCorner{"x", 0, 0, 0});
    ExperimentResult r = runExperiment(*d, quickConfig());
    ASSERT_TRUE(r.trace.hasChannel("die_temp"));
    const auto &ch = r.trace.channel("die_temp");
    // Box stabilization + 2 iterations at >= 90 s each.
    EXPECT_GT(ch.samples().back().when, Time::minutes(3));
}

TEST(Experiment, DeviceRestoredAfterRun)
{
    auto d = makeNexus5(2, UnitCorner{"x", 0, 0, 0});
    ExperimentConfig cfg = quickConfig();
    cfg.mode = WorkloadMode::FixedFrequency;
    cfg.fixedFrequency = MegaHertz(300);
    runExperiment(*d, cfg);
    EXPECT_EQ(d->wakelockCount(), 0);
    EXPECT_FALSE(d->workloadRunning());
}

TEST(Experiment, HotterAmbientCostsEnergy)
{
    // The Fig 2 mechanism in miniature: same work at higher chamber
    // temperature needs more energy.
    auto d = makeNexus5(2, UnitCorner{"x", 0.5, 0.2, 0});
    ExperimentConfig cool = quickConfig();
    cool.mode = WorkloadMode::FixedFrequency;
    cool.fixedFrequency = MegaHertz(1574);
    cool.thermabox.target = Celsius(15.0);
    cool.accubench.cooldownTarget = Celsius(25.0);

    ExperimentConfig hot = cool;
    hot.thermabox.target = Celsius(40.0);
    hot.accubench.cooldownTarget = Celsius(48.0);

    ExperimentResult cold_r = runExperiment(*d, cool);
    ExperimentResult hot_r = runExperiment(*d, hot);

    EXPECT_GT(hot_r.meanWorkloadEnergy().value(),
              cold_r.meanWorkloadEnergy().value() * 1.05);
    // Same frequency, same work.
    EXPECT_NEAR(hot_r.meanScore(), cold_r.meanScore(),
                cold_r.meanScore() * 0.01);
}

} // namespace
} // namespace pvar
