/**
 * @file
 * Unit and statistical tests for the deterministic RNG.
 */

#include <cmath>
#include <gtest/gtest.h>

#include "sim/rng.hh"

namespace pvar
{
namespace
{

TEST(Rng, Deterministic)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += a.next() == b.next();
    EXPECT_LT(same, 2);
}

TEST(Rng, UniformRange)
{
    Rng rng(7);
    for (int i = 0; i < 10000; ++i) {
        double u = rng.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
    for (int i = 0; i < 1000; ++i) {
        double u = rng.uniform(-3.0, 5.0);
        EXPECT_GE(u, -3.0);
        EXPECT_LT(u, 5.0);
    }
}

TEST(Rng, UniformMoments)
{
    Rng rng(11);
    double sum = 0.0, sq = 0.0;
    const int n = 200000;
    for (int i = 0; i < n; ++i) {
        double u = rng.uniform();
        sum += u;
        sq += u * u;
    }
    double mean = sum / n;
    double var = sq / n - mean * mean;
    EXPECT_NEAR(mean, 0.5, 0.01);
    EXPECT_NEAR(var, 1.0 / 12.0, 0.01);
}

TEST(Rng, UniformIntInclusiveBounds)
{
    Rng rng(13);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 5000; ++i) {
        auto v = rng.uniformInt(2, 5);
        EXPECT_GE(v, 2);
        EXPECT_LE(v, 5);
        saw_lo |= v == 2;
        saw_hi |= v == 5;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, GaussianMoments)
{
    Rng rng(17);
    double sum = 0.0, sq = 0.0;
    const int n = 200000;
    for (int i = 0; i < n; ++i) {
        double g = rng.gaussian();
        sum += g;
        sq += g * g;
    }
    EXPECT_NEAR(sum / n, 0.0, 0.02);
    EXPECT_NEAR(sq / n, 1.0, 0.03);
}

TEST(Rng, GaussianScaled)
{
    Rng rng(19);
    double sum = 0.0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        sum += rng.gaussian(10.0, 2.0);
    EXPECT_NEAR(sum / n, 10.0, 0.05);
}

TEST(Rng, LognormalMedian)
{
    Rng rng(23);
    // Median of exp(N(mu, sigma)) is exp(mu).
    std::vector<double> xs;
    for (int i = 0; i < 20001; ++i)
        xs.push_back(rng.lognormal(1.0, 0.5));
    std::sort(xs.begin(), xs.end());
    EXPECT_NEAR(xs[10000], std::exp(1.0), 0.1);
}

TEST(Rng, LognormalPositive)
{
    Rng rng(29);
    for (int i = 0; i < 1000; ++i)
        EXPECT_GT(rng.lognormal(0.0, 1.0), 0.0);
}

TEST(Rng, ForkReproducible)
{
    // Forking at the same parent state yields the same child stream.
    Rng parent1(99);
    Rng child1 = parent1.fork(5);

    Rng parent2(99);
    Rng child2 = parent2.fork(5);

    for (int i = 0; i < 32; ++i)
        EXPECT_EQ(child1.next(), child2.next());
}

TEST(Rng, ForkDecoupledFromParent)
{
    // The child stream differs from the parent's continued output.
    Rng parent(99);
    Rng child = parent.fork(5);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += child.next() == parent.next();
    EXPECT_LT(same, 2);
}

TEST(Rng, ForkStreamsDiffer)
{
    Rng parent(123);
    Rng a = parent.fork(1);
    Rng b = parent.fork(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += a.next() == b.next();
    EXPECT_LT(same, 2);
}

} // namespace
} // namespace pvar
