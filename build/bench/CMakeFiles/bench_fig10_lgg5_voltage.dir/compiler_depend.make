# Empty compiler generated dependencies file for bench_fig10_lgg5_voltage.
# This may be replaced when dependencies are built.
