#include "report/fault_json.hh"

#include <fstream>
#include <sstream>

#include "sim/logging.hh"
#include "sim/strfmt.hh"

namespace pvar
{

namespace
{

/** Non-negative integer field, or @p dflt when absent. */
std::uint64_t
u64Field(const JsonValue &obj, const char *key, std::uint64_t dflt)
{
    const JsonValue *v = obj.find(key);
    if (!v)
        return dflt;
    double d = v->asNumber();
    auto u = static_cast<std::uint64_t>(d);
    if (d < 0.0 || static_cast<double>(u) != d) {
        throw JsonError(strfmt("'%s' must be a non-negative integer",
                               key));
    }
    return u;
}

FaultRule
ruleFromJson(const JsonValue &obj)
{
    if (!obj.isObject())
        throw JsonError("fault rule must be an object");

    FaultRule rule;
    const std::string &site = obj.at("site").asString();
    if (!faultSiteFromName(site, rule.site))
        throw JsonError(strfmt("unknown fault site '%s'", site.c_str()));

    if (const JsonValue *kind = obj.find("kind")) {
        if (!faultKindFromName(kind->asString(), rule.kind)) {
            throw JsonError(strfmt("unknown fault kind '%s'",
                                   kind->asString().c_str()));
        }
    }
    if (const JsonValue *p = obj.find("probability")) {
        rule.probability = p->asNumber();
        if (rule.probability < 0.0 || rule.probability > 1.0)
            throw JsonError("'probability' must be in [0, 1]");
    }
    if (const JsonValue *counts = obj.find("counts")) {
        for (const JsonValue &c : counts->asArray()) {
            double d = c.asNumber();
            auto u = static_cast<std::uint64_t>(d);
            if (d < 0.0 || static_cast<double>(u) != d) {
                throw JsonError(
                    "'counts' entries must be non-negative integers");
            }
            rule.counts.push_back(u);
        }
    }
    if (const JsonValue *mode = obj.find("mode")) {
        if (!sysFaultModeFromName(mode->asString(), rule.mode)) {
            throw JsonError(strfmt("unknown fault mode '%s'",
                                   mode->asString().c_str()));
        }
    }
    rule.after = u64Field(obj, "after", 0);
    rule.every = u64Field(obj, "every", 0);
    rule.times = u64Field(obj, "times", 0);
    if (const JsonValue *v = obj.find("value"))
        rule.value = v->asNumber();
    return rule;
}

} // namespace

std::string
toJson(const FaultPlan &plan)
{
    JsonWriter w;
    w.beginObject();
    w.key("seed").value(static_cast<long long>(plan.seed()));
    w.key("rules").beginArray();
    for (const FaultRule &rule : plan.rules()) {
        w.beginObject();
        w.key("site").value(faultSiteName(rule.site));
        w.key("kind").value(faultKindName(rule.kind));
        if (rule.mode != SysFaultMode::Default)
            w.key("mode").value(sysFaultModeName(rule.mode));
        w.key("probability").rawValue(jsonExactDouble(rule.probability));
        if (!rule.counts.empty()) {
            w.key("counts").beginArray();
            for (std::uint64_t c : rule.counts)
                w.value(static_cast<long long>(c));
            w.endArray();
        }
        w.key("after").value(static_cast<long long>(rule.after));
        w.key("every").value(static_cast<long long>(rule.every));
        w.key("times").value(static_cast<long long>(rule.times));
        w.key("value").rawValue(jsonExactDouble(rule.value));
        w.endObject();
    }
    w.endArray();
    w.endObject();
    return w.str();
}

FaultPlan
faultPlanFromJson(const JsonValue &doc)
{
    if (!doc.isObject())
        throw JsonError("fault plan must be an object");
    double seed_d =
        doc.find("seed") ? doc.at("seed").asNumber() : 0.0;
    auto seed = static_cast<std::uint64_t>(seed_d);
    if (seed_d < 0.0 || static_cast<double>(seed) != seed_d)
        throw JsonError("'seed' must be a non-negative integer");

    FaultPlan plan(seed);
    if (const JsonValue *rules = doc.find("rules")) {
        for (const JsonValue &r : rules->asArray())
            plan.addRule(ruleFromJson(r));
    }
    return plan;
}

FaultPlan
loadFaultPlanFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        fatal("cannot open fault plan '%s'", path.c_str());
    std::ostringstream text;
    text << in.rdbuf();

    JsonValue doc;
    std::string error;
    if (!parseJson(text.str(), doc, error))
        fatal("fault plan '%s': %s", path.c_str(), error.c_str());
    try {
        return faultPlanFromJson(doc);
    } catch (const JsonError &e) {
        fatal("fault plan '%s': %s", path.c_str(), e.what());
    }
}

} // namespace pvar
