
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/device/device.cc" "src/CMakeFiles/pvar_device.dir/device/device.cc.o" "gcc" "src/CMakeFiles/pvar_device.dir/device/device.cc.o.d"
  "/root/repo/src/device/fleet.cc" "src/CMakeFiles/pvar_device.dir/device/fleet.cc.o" "gcc" "src/CMakeFiles/pvar_device.dir/device/fleet.cc.o.d"
  "/root/repo/src/device/lgg5.cc" "src/CMakeFiles/pvar_device.dir/device/lgg5.cc.o" "gcc" "src/CMakeFiles/pvar_device.dir/device/lgg5.cc.o.d"
  "/root/repo/src/device/nexus5.cc" "src/CMakeFiles/pvar_device.dir/device/nexus5.cc.o" "gcc" "src/CMakeFiles/pvar_device.dir/device/nexus5.cc.o.d"
  "/root/repo/src/device/nexus6.cc" "src/CMakeFiles/pvar_device.dir/device/nexus6.cc.o" "gcc" "src/CMakeFiles/pvar_device.dir/device/nexus6.cc.o.d"
  "/root/repo/src/device/nexus6p.cc" "src/CMakeFiles/pvar_device.dir/device/nexus6p.cc.o" "gcc" "src/CMakeFiles/pvar_device.dir/device/nexus6p.cc.o.d"
  "/root/repo/src/device/pixel.cc" "src/CMakeFiles/pvar_device.dir/device/pixel.cc.o" "gcc" "src/CMakeFiles/pvar_device.dir/device/pixel.cc.o.d"
  "/root/repo/src/device/pixel2.cc" "src/CMakeFiles/pvar_device.dir/device/pixel2.cc.o" "gcc" "src/CMakeFiles/pvar_device.dir/device/pixel2.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/pvar_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pvar_silicon.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pvar_thermal.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pvar_power.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pvar_soc.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pvar_workload.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
