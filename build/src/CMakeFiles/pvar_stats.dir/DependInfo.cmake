
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/stats/fit.cc" "src/CMakeFiles/pvar_stats.dir/stats/fit.cc.o" "gcc" "src/CMakeFiles/pvar_stats.dir/stats/fit.cc.o.d"
  "/root/repo/src/stats/histogram.cc" "src/CMakeFiles/pvar_stats.dir/stats/histogram.cc.o" "gcc" "src/CMakeFiles/pvar_stats.dir/stats/histogram.cc.o.d"
  "/root/repo/src/stats/kmeans.cc" "src/CMakeFiles/pvar_stats.dir/stats/kmeans.cc.o" "gcc" "src/CMakeFiles/pvar_stats.dir/stats/kmeans.cc.o.d"
  "/root/repo/src/stats/summary.cc" "src/CMakeFiles/pvar_stats.dir/stats/summary.cc.o" "gcc" "src/CMakeFiles/pvar_stats.dir/stats/summary.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/pvar_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
