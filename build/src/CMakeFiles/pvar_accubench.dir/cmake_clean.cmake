file(REMOVE_RECURSE
  "CMakeFiles/pvar_accubench.dir/accubench/accubench.cc.o"
  "CMakeFiles/pvar_accubench.dir/accubench/accubench.cc.o.d"
  "CMakeFiles/pvar_accubench.dir/accubench/ambient_estimator.cc.o"
  "CMakeFiles/pvar_accubench.dir/accubench/ambient_estimator.cc.o.d"
  "CMakeFiles/pvar_accubench.dir/accubench/bin_clustering.cc.o"
  "CMakeFiles/pvar_accubench.dir/accubench/bin_clustering.cc.o.d"
  "CMakeFiles/pvar_accubench.dir/accubench/crowd.cc.o"
  "CMakeFiles/pvar_accubench.dir/accubench/crowd.cc.o.d"
  "CMakeFiles/pvar_accubench.dir/accubench/experiment.cc.o"
  "CMakeFiles/pvar_accubench.dir/accubench/experiment.cc.o.d"
  "CMakeFiles/pvar_accubench.dir/accubench/lower_bound.cc.o"
  "CMakeFiles/pvar_accubench.dir/accubench/lower_bound.cc.o.d"
  "CMakeFiles/pvar_accubench.dir/accubench/phase_windows.cc.o"
  "CMakeFiles/pvar_accubench.dir/accubench/phase_windows.cc.o.d"
  "CMakeFiles/pvar_accubench.dir/accubench/protocol.cc.o"
  "CMakeFiles/pvar_accubench.dir/accubench/protocol.cc.o.d"
  "CMakeFiles/pvar_accubench.dir/accubench/ranking.cc.o"
  "CMakeFiles/pvar_accubench.dir/accubench/ranking.cc.o.d"
  "CMakeFiles/pvar_accubench.dir/accubench/result.cc.o"
  "CMakeFiles/pvar_accubench.dir/accubench/result.cc.o.d"
  "CMakeFiles/pvar_accubench.dir/accubench/throttle_analysis.cc.o"
  "CMakeFiles/pvar_accubench.dir/accubench/throttle_analysis.cc.o.d"
  "libpvar_accubench.a"
  "libpvar_accubench.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pvar_accubench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
