#include "accubench/throttle_analysis.hh"

#include "sim/logging.hh"
#include "stats/summary.hh"

namespace pvar
{

ThrottleAnalysis
analyzeThrottling(const Trace &trace, const ThrottleAnalysisConfig &cfg)
{
    if (!trace.hasChannel(cfg.freqChannel))
        fatal("analyzeThrottling: missing channel '%s'",
              cfg.freqChannel.c_str());
    if (!trace.hasChannel(cfg.tempChannel))
        fatal("analyzeThrottling: missing channel '%s'",
              cfg.tempChannel.c_str());

    const auto &freq = trace.channel(cfg.freqChannel).samples();
    const auto &temp = trace.channel(cfg.tempChannel).samples();

    ThrottleAnalysis out;
    out.freqHist = Histogram(cfg.freqLoMhz, cfg.freqHiMhz, cfg.bins);
    out.tempHist = Histogram(cfg.tempLoC, cfg.tempHiC, cfg.bins);

    OnlineSummary freq_sum;
    Time awake = Time::zero(), capped = Time::zero(), hot = Time::zero();
    double prev_freq = -1.0;

    for (std::size_t i = 0; i + 1 < freq.size(); ++i) {
        double f = freq[i].value;
        if (f <= 0.0) {
            prev_freq = -1.0; // suspend gap breaks a change streak
            continue;
        }
        Time span = freq[i + 1].when - freq[i].when;
        double t =
            temp[i < temp.size() ? i : temp.size() - 1].value;

        awake += span;
        freq_sum.add(f);
        out.freqHist.add(f);
        out.tempHist.add(t);
        if (cfg.topFreqMhz > 0.0 && f < cfg.topFreqMhz)
            capped += span;
        if (t >= cfg.hotThresholdC)
            hot += span;
        if (prev_freq > 0.0 && f != prev_freq)
            ++out.freqChanges;
        prev_freq = f;
    }

    out.meanFreqMhz = freq_sum.mean();
    if (awake > Time::zero()) {
        out.fractionCapped = capped / awake;
        out.fractionHot = hot / awake;
    }
    return out;
}

} // namespace pvar
