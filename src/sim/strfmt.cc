#include "sim/strfmt.hh"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <vector>

namespace pvar
{

std::string
vstrfmt(const char *fmt, va_list ap)
{
    va_list ap_copy;
    va_copy(ap_copy, ap);
    int needed = std::vsnprintf(nullptr, 0, fmt, ap_copy);
    va_end(ap_copy);
    if (needed < 0)
        return std::string(fmt);

    std::vector<char> buf(static_cast<size_t>(needed) + 1);
    std::vsnprintf(buf.data(), buf.size(), fmt, ap);
    return std::string(buf.data(), static_cast<size_t>(needed));
}

std::string
strfmt(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string out = vstrfmt(fmt, ap);
    va_end(ap);
    return out;
}

bool
parseIntStrict(const std::string &s, long long &out)
{
    if (s.empty())
        return false;
    errno = 0;
    char *end = nullptr;
    long long v = std::strtoll(s.c_str(), &end, 10);
    if (errno != 0 || end != s.c_str() + s.size())
        return false;
    out = v;
    return true;
}

bool
parseDoubleStrict(const std::string &s, double &out)
{
    if (s.empty())
        return false;
    errno = 0;
    char *end = nullptr;
    double v = std::strtod(s.c_str(), &end);
    if (errno != 0 || end != s.c_str() + s.size())
        return false;
    out = v;
    return true;
}

} // namespace pvar
