#include "sim/parallel.hh"

#include <atomic>
#include <exception>

#include "sim/logging.hh"
#include "sim/strfmt.hh"

namespace pvar
{

int
hardwareJobs()
{
    unsigned n = std::thread::hardware_concurrency();
    return n > 0 ? static_cast<int>(n) : 1;
}

int
resolveJobs(int jobs)
{
    return jobs > 0 ? jobs : hardwareJobs();
}

ThreadPool::ThreadPool(int workers)
{
    int n = workers > 0 ? workers : hardwareJobs();
    _threads.reserve(n);
    for (int i = 0; i < n; ++i)
        _threads.emplace_back([this, i] { workerLoop(i); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(_mutex);
        _stop = true;
    }
    _cv.notify_all();
    for (auto &t : _threads)
        t.join();
}

void
ThreadPool::workerLoop(int worker_id)
{
    setLogThreadTag(strfmt("w%d", worker_id));
    for (;;) {
        std::packaged_task<void()> task;
        {
            std::unique_lock<std::mutex> lock(_mutex);
            _cv.wait(lock, [this] { return _stop || !_queue.empty(); });
            if (_queue.empty()) {
                if (_stop)
                    return;
                continue;
            }
            task = std::move(_queue.front());
            _queue.pop_front();
        }
        task(); // packaged_task captures any exception in the future
    }
}

std::future<void>
ThreadPool::submit(std::function<void()> fn)
{
    std::packaged_task<void()> task(std::move(fn));
    std::future<void> fut = task.get_future();
    {
        std::lock_guard<std::mutex> lock(_mutex);
        if (_stop)
            panic("ThreadPool: submit after shutdown");
        _queue.push_back(std::move(task));
    }
    _cv.notify_one();
    return fut;
}

void
ThreadPool::parallelFor(std::size_t n,
                        const std::function<void(std::size_t)> &fn)
{
    if (n == 0)
        return;

    // Dynamic index claiming: one shared counter, one queued task per
    // worker. On failure the first exception is kept and the counter
    // is pushed past n so the remaining indices are skipped.
    auto next = std::make_shared<std::atomic<std::size_t>>(0);
    auto first_error = std::make_shared<std::exception_ptr>();
    auto error_mutex = std::make_shared<std::mutex>();

    auto drain = [next, first_error, error_mutex, n, &fn] {
        for (;;) {
            std::size_t i = next->fetch_add(1);
            if (i >= n)
                return;
            try {
                fn(i);
            } catch (...) {
                std::lock_guard<std::mutex> lock(*error_mutex);
                if (!*first_error)
                    *first_error = std::current_exception();
                next->store(n);
                return;
            }
        }
    };

    std::size_t lanes =
        std::min<std::size_t>(n, static_cast<std::size_t>(workerCount()));
    std::vector<std::future<void>> futs;
    futs.reserve(lanes);
    for (std::size_t i = 0; i < lanes; ++i)
        futs.push_back(submit(drain));
    for (auto &f : futs)
        f.get();

    if (*first_error)
        std::rethrow_exception(*first_error);
}

void
parallelFor(std::size_t n, int jobs,
            const std::function<void(std::size_t)> &fn)
{
    int resolved = resolveJobs(jobs);
    if (n <= 1 || resolved <= 1) {
        // Inline serial reference path: no threads, same results.
        for (std::size_t i = 0; i < n; ++i)
            fn(i);
        return;
    }
    ThreadPool pool(
        static_cast<int>(std::min<std::size_t>(n,
                             static_cast<std::size_t>(resolved))));
    pool.parallelFor(n, fn);
}

} // namespace pvar
