/**
 * @file
 * Unit tests for 1-D k-means clustering.
 */

#include <gtest/gtest.h>

#include "stats/kmeans.hh"

namespace pvar
{
namespace
{

std::vector<double>
threeClusters()
{
    // Tight groups near 10, 50, 90.
    return {9.8, 10.1, 10.0, 9.9, 49.7, 50.2, 50.0, 50.1,
            89.9, 90.2, 90.0, 90.1};
}

TEST(KMeans, RecoversSeparatedClusters)
{
    Rng rng(1);
    auto data = threeClusters();
    KMeansResult r = kmeans1d(data, 3, rng);

    ASSERT_EQ(r.centers.size(), 3u);
    EXPECT_NEAR(r.centers[0], 10.0, 0.5);
    EXPECT_NEAR(r.centers[1], 50.0, 0.5);
    EXPECT_NEAR(r.centers[2], 90.0, 0.5);
    EXPECT_LT(r.inertia, 1.0);

    // Membership matches the generating groups.
    for (int i = 0; i < 4; ++i)
        EXPECT_EQ(r.assignment[static_cast<std::size_t>(i)], 0u);
    for (int i = 4; i < 8; ++i)
        EXPECT_EQ(r.assignment[static_cast<std::size_t>(i)], 1u);
    for (int i = 8; i < 12; ++i)
        EXPECT_EQ(r.assignment[static_cast<std::size_t>(i)], 2u);
}

TEST(KMeans, CentersSortedAscending)
{
    Rng rng(7);
    auto data = threeClusters();
    KMeansResult r = kmeans1d(data, 3, rng);
    EXPECT_LT(r.centers[0], r.centers[1]);
    EXPECT_LT(r.centers[1], r.centers[2]);
}

TEST(KMeans, SingleCluster)
{
    Rng rng(3);
    std::vector<double> data = {1.0, 2.0, 3.0};
    KMeansResult r = kmeans1d(data, 1, rng);
    ASSERT_EQ(r.centers.size(), 1u);
    EXPECT_NEAR(r.centers[0], 2.0, 1e-9);
}

TEST(KMeans, KEqualsNIsPerfect)
{
    Rng rng(5);
    std::vector<double> data = {1.0, 5.0, 9.0};
    KMeansResult r = kmeans1d(data, 3, rng);
    EXPECT_NEAR(r.inertia, 0.0, 1e-12);
}

TEST(KMeans, IdenticalPointsDoNotCrash)
{
    Rng rng(11);
    std::vector<double> data(10, 4.2);
    KMeansResult r = kmeans1d(data, 3, rng);
    EXPECT_NEAR(r.inertia, 0.0, 1e-12);
}

TEST(KMeans, DeterministicGivenSeed)
{
    auto data = threeClusters();
    Rng r1(99), r2(99);
    KMeansResult a = kmeans1d(data, 3, r1);
    KMeansResult b = kmeans1d(data, 3, r2);
    EXPECT_EQ(a.centers, b.centers);
    EXPECT_EQ(a.assignment, b.assignment);
}

TEST(KMeansAuto, PicksThreeForThreeClusters)
{
    Rng rng(13);
    auto data = threeClusters();
    KMeansResult r = kmeansAuto(data, 6, rng);
    EXPECT_EQ(r.centers.size(), 3u);
}

TEST(KMeansAuto, PicksOneForUniformBlob)
{
    Rng rng(17);
    std::vector<double> data;
    Rng gen(21);
    for (int i = 0; i < 60; ++i)
        data.push_back(gen.gaussian(100.0, 1.0));
    KMeansResult r = kmeansAuto(data, 6, rng, 0.6);
    EXPECT_LE(r.centers.size(), 2u);
}

/** Parameterized: recovery works across cluster separations. */
class KMeansSeparation : public ::testing::TestWithParam<double>
{
};

TEST_P(KMeansSeparation, TwoClustersRecovered)
{
    double sep = GetParam();
    Rng gen(31);
    std::vector<double> data;
    for (int i = 0; i < 30; ++i)
        data.push_back(gen.gaussian(0.0, 1.0));
    for (int i = 0; i < 30; ++i)
        data.push_back(gen.gaussian(sep, 1.0));

    Rng rng(37);
    KMeansResult r = kmeans1d(data, 2, rng);
    EXPECT_NEAR(r.centers[0], 0.0, 0.8);
    EXPECT_NEAR(r.centers[1], sep, 0.8);
}

INSTANTIATE_TEST_SUITE_P(Separations, KMeansSeparation,
                         ::testing::Values(8.0, 15.0, 40.0, 100.0));

} // namespace
} // namespace pvar
