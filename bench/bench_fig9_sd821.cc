/**
 * @file
 * Regenerates paper Figs 9a/9b: SD-821 (Google Pixel) process
 * variation. Similar character to the SD-820 it tweaks: ~5%
 * performance and ~9% energy spread across three units.
 */

#include "soc_figure.hh"

using namespace pvar;

int
main()
{
    SocFigureSpec spec;
    spec.figureId = "Fig 9";
    spec.socName = "SD-821";
    spec.paperPerfPercent = 5.0;
    spec.paperEnergyPercent = 9.0;
    spec.perfTolerance = 4.0;
    return runSocFigure(spec);
}
