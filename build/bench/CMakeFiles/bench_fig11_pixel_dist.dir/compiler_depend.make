# Empty compiler generated dependencies file for bench_fig11_pixel_dist.
# This may be replaced when dependencies are built.
