/**
 * @file
 * Ablation: workload duty cycle vs. observable process variation.
 *
 * The paper studies a sustained CPU-bound workload because that is
 * where thermal throttling — and therefore process variation —
 * manifests. This bench quantifies the corollary for interactive,
 * bursty use: as the duty cycle drops, devices stop reaching their
 * trip points and the performance gap between a frugal and a leaky
 * die of the same model collapses. Variation is a *sustained-load*
 * phenomenon; two phones can feel identical in light use and differ
 * by >10% under load.
 */

#include <cstdio>

#include "accubench/experiment.hh"
#include "bench_util.hh"
#include "device/catalog.hh"
#include "report/figure.hh"
#include "report/table.hh"

using namespace pvar;

namespace
{

double
scoreWithDuty(Device &device, double duty)
{
    ExperimentConfig cfg;
    cfg.mode = WorkloadMode::Unconstrained;
    cfg.iterations = 2;
    cfg.accubench.workload.burstPeriod =
        duty < 1.0 ? Time::sec(10) : Time::zero();
    cfg.accubench.workload.burstDuty = duty;
    return runExperiment(device, cfg).meanScore();
}

} // namespace

int
main()
{
    benchQuiet();
    std::printf("%s", figureHeader(
        "Ablation: duty cycle vs observable variation",
        "process variation manifests under sustained load; bursty "
        "(interactive) use masks it").c_str());

    auto frugal = makeNexus5(0, UnitCorner{"bin-0", -1.75, +0.15, 0.0});
    auto leaky = makeNexus5(3, UnitCorner{"bin-3", +1.25, +0.10, 0.0});

    const double duties[] = {0.3, 0.5, 0.7, 1.0};
    Table t({"Duty cycle", "bin-0 score", "bin-3 score",
             "observable gap"});
    std::vector<double> gaps;

    for (double duty : duties) {
        double s0 = scoreWithDuty(*frugal, duty);
        double s3 = scoreWithDuty(*leaky, duty);
        double gap = (s0 - s3) / s0 * 100.0;
        gaps.push_back(gap);
        t.addRow({fmtPercent(duty * 100.0, 0), fmtDouble(s0, 1),
                  fmtDouble(s3, 1), fmtPercent(gap)});
    }
    std::printf("%s", t.render().c_str());

    std::printf("\nSHAPE CHECK:\n");
    shapeCheck(gaps.back() > 8.0,
               "under sustained load the bin gap is " +
                   fmtPercent(gaps.back()) + " (the Fig 6a result)");
    shapeCheck(gaps.front() < gaps.back() * 0.4,
               "at 30% duty the gap collapses to " +
                   fmtPercent(gaps.front()) +
                   " - light use masks the silicon lottery");
    bool monotone = true;
    for (std::size_t i = 0; i + 1 < gaps.size(); ++i)
        monotone &= gaps[i] <= gaps[i + 1] + 1.0;
    shapeCheck(monotone, "the gap grows with duty cycle");
    return 0;
}
