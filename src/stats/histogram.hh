/**
 * @file
 * Fixed-width histograms.
 *
 * Figures 11 and 12 of the paper present frequency and temperature
 * *distributions over time* for pairs of devices. Histogram bins a
 * sample stream into uniform buckets and reports per-bin counts and
 * fractions of total observation count.
 */

#ifndef PVAR_STATS_HISTOGRAM_HH
#define PVAR_STATS_HISTOGRAM_HH

#include <cstddef>
#include <string>
#include <vector>

namespace pvar
{

/**
 * Uniform-bin histogram over [lo, hi).
 *
 * Out-of-range samples clamp into the first/last bin so a stray
 * observation is visible rather than silently dropped.
 */
class Histogram
{
  public:
    /**
     * @param lo lower edge of the first bin.
     * @param hi upper edge of the last bin (must exceed lo).
     * @param bins number of bins (>= 1).
     */
    Histogram(double lo, double hi, std::size_t bins);

    void add(double x);
    void addAll(const std::vector<double> &xs);

    std::size_t binCount() const { return _counts.size(); }
    std::size_t total() const { return _total; }

    /** Count in bin i. */
    std::size_t count(std::size_t i) const;

    /** Fraction of all samples in bin i (0 when empty). */
    double fraction(std::size_t i) const;

    /** Center value of bin i. */
    double binCenter(std::size_t i) const;

    /** Lower edge of bin i. */
    double binLow(std::size_t i) const;

    /** Width of each bin. */
    double binWidth() const { return _width; }

    /** Index of the fullest bin (0 when empty). */
    std::size_t modeBin() const;

    /** All per-bin fractions. */
    std::vector<double> fractions() const;

    /** Render as a compact multi-line ASCII bar chart. */
    std::string toAscii(std::size_t max_width = 50) const;

  private:
    double _lo;
    double _width;
    std::vector<std::size_t> _counts;
    std::size_t _total;
};

} // namespace pvar

#endif // PVAR_STATS_HISTOGRAM_HH
