#include "soc/input_voltage_throttle.hh"

#include <limits>

#include "sim/logging.hh"

namespace pvar
{

InputVoltageThrottle::InputVoltageThrottle(
    const InputVoltageThrottleParams &params)
    : _params(params), _engaged(false), _lastPoll(Time::zero()),
      _primed(false)
{
    if (_params.releaseAbove <= _params.engageBelow)
        fatal("InputVoltageThrottle: release threshold must exceed "
              "engage threshold");
}

void
InputVoltageThrottle::update(Time now, Volts rail)
{
    if (_primed && now >= _lastPoll &&
        now - _lastPoll < _params.pollPeriod)
        return;
    _lastPoll = now;
    _primed = true;

    if (!_engaged && rail < _params.engageBelow)
        _engaged = true;
    else if (_engaged && rail > _params.releaseAbove)
        _engaged = false;
}

MegaHertz
InputVoltageThrottle::freqCap() const
{
    if (_engaged)
        return _params.cap;
    return MegaHertz(std::numeric_limits<double>::infinity());
}

void
InputVoltageThrottle::reset()
{
    _engaged = false;
    _lastPoll = Time::zero();
    _primed = false;
}

} // namespace pvar
