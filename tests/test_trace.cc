/**
 * @file
 * Unit tests for time-series recording.
 */

#include <gtest/gtest.h>

#include "sim/trace.hh"

namespace pvar
{
namespace
{

TEST(TraceChannel, RecordAndQuery)
{
    TraceChannel ch("temp");
    EXPECT_TRUE(ch.empty());
    ch.record(Time::sec(0), 30.0);
    ch.record(Time::sec(1), 40.0);
    ch.record(Time::sec(2), 50.0);
    EXPECT_EQ(ch.size(), 3u);
    EXPECT_DOUBLE_EQ(ch.last(), 50.0);
    EXPECT_DOUBLE_EQ(ch.mean(), 40.0);
    EXPECT_DOUBLE_EQ(ch.min(), 30.0);
    EXPECT_DOUBLE_EQ(ch.max(), 50.0);
}

TEST(TraceChannel, TimeWeightedMeanUnevenSpacing)
{
    TraceChannel ch("x");
    // Value 10 for 1 s, then 20 for 9 s: weighted mean 19.
    ch.record(Time::sec(0), 10.0);
    ch.record(Time::sec(1), 20.0);
    ch.record(Time::sec(10), 20.0);
    EXPECT_NEAR(ch.timeWeightedMean(), 19.0, 1e-9);
    // Plain mean treats samples equally.
    EXPECT_NEAR(ch.mean(), 50.0 / 3.0, 1e-9);
}

TEST(TraceChannel, TimeAtOrAbove)
{
    TraceChannel ch("t");
    ch.record(Time::sec(0), 70.0);
    ch.record(Time::sec(5), 80.0);
    ch.record(Time::sec(8), 75.0);
    ch.record(Time::sec(10), 60.0);
    // >= 75: the sample at 5 s holds 3 s, the one at 8 s holds 2 s,
    // and the first sample (70) does not count.
    EXPECT_EQ(ch.timeAtOrAbove(75.0), Time::sec(5));
    EXPECT_EQ(ch.timeAtOrAbove(60.0), Time::sec(10));
    EXPECT_EQ(ch.timeAtOrAbove(90.0), Time::zero());
}

TEST(TraceChannel, Since)
{
    TraceChannel ch("x");
    for (int i = 0; i < 10; ++i)
        ch.record(Time::sec(i), i);
    TraceChannel tail = ch.since(Time::sec(7));
    EXPECT_EQ(tail.size(), 3u);
    EXPECT_DOUBLE_EQ(tail.samples().front().value, 7.0);
}

TEST(TraceChannel, Values)
{
    TraceChannel ch("x");
    ch.record(Time::sec(0), 1.5);
    ch.record(Time::sec(1), 2.5);
    EXPECT_EQ(ch.values(), (std::vector<double>{1.5, 2.5}));
}

TEST(Trace, ChannelAutoCreation)
{
    Trace t;
    EXPECT_FALSE(t.hasChannel("a"));
    t.record("a", Time::sec(1), 5.0);
    EXPECT_TRUE(t.hasChannel("a"));
    EXPECT_DOUBLE_EQ(t.channel("a").last(), 5.0);
}

TEST(Trace, ChannelNamesSorted)
{
    Trace t;
    t.record("z", Time::zero(), 1);
    t.record("a", Time::zero(), 1);
    t.record("m", Time::zero(), 1);
    EXPECT_EQ(t.channelNames(),
              (std::vector<std::string>{"a", "m", "z"}));
}

TEST(Trace, CsvFormat)
{
    Trace t;
    t.record("temp", Time::sec(1.5), 42.25);
    std::string csv = t.toCsv();
    EXPECT_NE(csv.find("channel,time_s,value\n"), std::string::npos);
    EXPECT_NE(csv.find("temp,1.500000,42.25"), std::string::npos);
}

TEST(Trace, Clear)
{
    Trace t;
    t.record("a", Time::zero(), 1);
    t.clear();
    EXPECT_FALSE(t.hasChannel("a"));
}

} // namespace
} // namespace pvar
