file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_cooldown.dir/bench_ablation_cooldown.cc.o"
  "CMakeFiles/bench_ablation_cooldown.dir/bench_ablation_cooldown.cc.o.d"
  "bench_ablation_cooldown"
  "bench_ablation_cooldown.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_cooldown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
