/**
 * @file
 * Shared implementation for the distribution figures (paper Figs
 * 11-12): run the UNCONSTRAINED workload on two units of one model
 * and compare their frequency and temperature distributions over the
 * scored window, plus the mean-frequency/performance correspondence
 * the paper highlights.
 */

#ifndef PVAR_BENCH_DIST_FIGURE_HH
#define PVAR_BENCH_DIST_FIGURE_HH

#include <cstdio>
#include <memory>
#include <string>

#include "accubench/experiment.hh"
#include "accubench/throttle_analysis.hh"
#include "bench_util.hh"
#include "device/device.hh"
#include "report/figure.hh"
#include "report/table.hh"

namespace pvar
{

/** Per-unit distribution data. */
struct UnitDistributions
{
    std::string unitId;
    double meanScore = 0.0;
    ThrottleAnalysis throttling;

    double meanFreqMhz() const { return throttling.meanFreqMhz; }
};

/**
 * Run the experiment and collect workload-phase distributions.
 *
 * @param device unit under test.
 * @param freq_channel trace channel of the (big) cluster frequency.
 * @param freq_lo/freq_hi histogram range (MHz).
 * @param hot_threshold "time at temperature" threshold (C).
 */
inline UnitDistributions
collectDistributions(Device &device, const std::string &freq_channel,
                     double freq_lo, double freq_hi,
                     double hot_threshold)
{
    ExperimentConfig cfg;
    cfg.mode = WorkloadMode::Unconstrained;
    cfg.iterations = 2;
    ExperimentResult r = runExperiment(device, cfg);

    ThrottleAnalysisConfig ta;
    ta.freqChannel = freq_channel;
    ta.freqLoMhz = freq_lo;
    ta.freqHiMhz = freq_hi;
    ta.hotThresholdC = hot_threshold;
    ta.tempLoC = 26.0;
    ta.tempHiC = 90.0;

    UnitDistributions out;
    out.unitId = device.unitId();
    out.meanScore = r.meanScore();
    out.throttling = analyzeThrottling(r.trace, ta);
    return out;
}

/** Print the two-unit comparison and return the key ratios. */
inline void
printDistributionFigure(const std::string &figure_id,
                        const UnitDistributions &a,
                        const UnitDistributions &b)
{
    for (const auto *u : {&a, &b}) {
        std::printf("\n--- %s: frequency distribution (MHz) ---\n%s",
                    u->unitId.c_str(),
                    u->throttling.freqHist.toAscii(40).c_str());
        std::printf("--- %s: temperature distribution (C) ---\n%s",
                    u->unitId.c_str(),
                    u->throttling.tempHist.toAscii(40).c_str());
    }

    Table t({"Unit", "Mean freq (MHz)", "Score", "Time at temp"});
    for (const auto *u : {&a, &b}) {
        t.addRow({u->unitId, fmtDouble(u->meanFreqMhz(), 0),
                  fmtDouble(u->meanScore, 1),
                  fmtPercent(u->throttling.fractionHot * 100.0)});
    }
    std::printf("\n%s", t.render().c_str());

    double freq_delta = a.meanFreqMhz() / b.meanFreqMhz() - 1.0;
    double perf_delta = a.meanScore / b.meanScore - 1.0;
    std::printf("\n%s: %s has %s higher mean frequency and %s higher "
                "score than %s\n",
                figure_id.c_str(), a.unitId.c_str(),
                fmtPercent(freq_delta * 100.0).c_str(),
                fmtPercent(perf_delta * 100.0).c_str(),
                b.unitId.c_str());
}

} // namespace pvar

#endif // PVAR_BENCH_DIST_FIGURE_HH
