/**
 * @file
 * Lumped-parameter (RC) thermal network.
 *
 * Heat conduction through a small device is well approximated by a
 * graph of thermal capacitances (nodes) joined by thermal conductances
 * (edges), with dissipating components injecting power into nodes and
 * the environment modeled as fixed-temperature boundary nodes. This is
 * the same abstraction Therminator and gem5's thermal model use.
 *
 * Integration is explicit Euler with automatic sub-stepping: the step
 * is subdivided until it is below half of the smallest node time
 * constant, which keeps the forward method stable for any network.
 */

#ifndef PVAR_THERMAL_RC_NETWORK_HH
#define PVAR_THERMAL_RC_NETWORK_HH

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "sim/bytes.hh"
#include "sim/time.hh"
#include "sim/units.hh"
#include "thermal/fast_solver.hh"

namespace pvar
{

/** Index of a node within a ThermalNetwork. */
using ThermalNodeId = std::size_t;

/**
 * Which integrator advances thermal state.
 *
 * `Stepped` is the explicit-Euler reference: its output is the
 * bit-identity contract every cache and determinism check is keyed
 * to. `Fast` jumps event-to-event through the eigendecomposed matrix
 * exponential (see thermal/fast_solver.hh); it agrees with Stepped to
 * tolerance, not bit-for-bit.
 */
enum class SolverKind
{
    Stepped,
    Fast,
};

/** Canonical lowercase name ("stepped" / "fast"). */
const char *solverKindName(SolverKind kind);

/** Parse a canonical solver name; false leaves `out` untouched. */
bool parseSolverKind(const std::string &text, SolverKind &out);

/**
 * A graph of thermal masses and conductances.
 */
class ThermalNetwork
{
  public:
    ThermalNetwork() = default;

    /**
     * Add a thermal mass.
     *
     * @param node_name diagnostic name.
     * @param capacitance heat capacity (J/K); must be positive.
     * @param initial starting temperature.
     */
    ThermalNodeId addNode(const std::string &node_name,
                          JoulesPerKelvin capacitance, Celsius initial);

    /**
     * Add a fixed-temperature boundary (e.g. ambient air).
     */
    ThermalNodeId addBoundary(const std::string &node_name, Celsius temp);

    /** Join two nodes with a thermal conductance (W/K). */
    void connect(ThermalNodeId a, ThermalNodeId b, WattsPerKelvin g);

    /** Number of nodes (including boundaries). */
    std::size_t nodeCount() const { return _nodes.size(); }

    /** Set the power injected into a node (held until changed). */
    void setPower(ThermalNodeId node, Watts p);

    /** Current injected power. */
    Watts power(ThermalNodeId node) const;

    /** Instantaneous temperature of a node. */
    Celsius temperature(ThermalNodeId node) const;

    /** Force a node's temperature (initialization / boundary update). */
    void setTemperature(ThermalNodeId node, Celsius t);

    /** True if the node is a fixed-temperature boundary. */
    bool isBoundary(ThermalNodeId node) const;

    /** Node's diagnostic name. */
    const std::string &nodeName(ThermalNodeId node) const;

    /** Advance the network by `dt` (sub-stepped as needed). */
    void step(Time dt);

    /**
     * Jump to the steady state for the current powers and boundary
     * temperatures (Gauss-Seidel iteration).
     *
     * @param tolerance convergence threshold in kelvin.
     * @param max_iters iteration cap.
     * @param final_residual if non-null, receives the largest
     *        per-node temperature update of the last sweep (kelvin) —
     *        the convergence diagnostic, valid on both outcomes.
     * @return true on convergence.
     */
    bool solveSteadyState(double tolerance = 1e-6, int max_iters = 20000,
                          double *final_residual = nullptr);

    /** Net heat flow out of a node through its edges right now (W). */
    Watts heatOutflow(ThermalNodeId node) const;

    /**
     * Analytic fast path: advance by `dt` in one O(n^2) jump. Exact
     * for the linear network while powers and boundaries are held;
     * falls back to step() if the eigendecomposition is unavailable.
     */
    void fastAdvance(Time dt);

    /**
     * Temperature `node` would reach after `dt` at the current powers
     * without mutating any state — the Picard-iteration probe for
     * temperature-dependent power.
     */
    Celsius fastPreview(ThermalNodeId node, Time dt);

    /** True once the analytic solver is built for this topology. */
    bool fastReady();

    /**
     * Share `donor`'s analytic solver instead of building our own.
     *
     * Only succeeds when the two topologies are bit-identical (same
     * node capacitances and edge list), in which case the donor's
     * eigendecomposition is exactly what build() would produce here
     * and sharing it changes no result bits. Cohorts of same-spec
     * dies use this so B networks pay for one decomposition.
     *
     * @return false (this network keeps its own solver) when the
     *         topologies differ or the donor's solver is unusable.
     */
    bool adoptFastSolver(ThermalNetwork &donor);

    /**
     * Advance `count` same-topology networks by `dt` in one batched
     * jump through their shared analytic solver. Per-die results are
     * bit-identical to calling fastAdvance(dt) on each network in
     * turn; the batch only interleaves the independent per-die
     * dependency chains. Networks that are not ready or do not share
     * one solver degrade to serial fastAdvance calls.
     */
    static void fastAdvanceBatch(ThermalNetwork *const *nets,
                                 std::size_t count, Time dt);

    /**
     * @name Live-point state.
     *
     * Only per-node temperature and injected power are dynamic; the
     * topology (names, capacitances, edges) is rebuilt from the device
     * spec, and every solver cache gathers state per call, so a
     * restore needs no invalidation.
     * @{
     */
    void
    saveState(ByteWriter &w) const
    {
        w.u32(static_cast<std::uint32_t>(_nodes.size()));
        for (const Node &n : _nodes) {
            w.f64(n.temp);
            w.f64(n.power);
        }
    }

    bool
    loadState(ByteReader &r)
    {
        std::uint32_t n_nodes = 0;
        if (!r.u32(n_nodes) || n_nodes != _nodes.size())
            return false;
        for (Node &n : _nodes)
            if (!r.f64(n.temp) || !r.f64(n.power))
                return false;
        return true;
    }
    /** @} */

  private:
    struct Node
    {
        std::string name;
        double capacitance; // J/K; <= 0 marks a boundary
        double temp;        // Celsius
        double power;       // W injected
    };

    struct Edge
    {
        ThermalNodeId a;
        ThermalNodeId b;
        double conductance; // W/K
    };

    std::vector<Node> _nodes;
    std::vector<Edge> _edges;
    // Adjacency: per node, list of (other node, conductance).
    std::vector<std::vector<std::pair<ThermalNodeId, double>>> _adj;

    // step() is the hottest function in every simulation; the values
    // below depend only on topology (and the step size), so they are
    // cached and invalidated by addNode/addBoundary/connect instead of
    // being recomputed every call.
    bool _topologyDirty = true;     // tau/invCap need a recompute
    double _minTau = 0.0;           // cached minTimeConstant()
    std::vector<double> _invCap;    // 1/C per node; 0 for boundaries
    std::vector<double> _flux;      // scratch, sized to _nodes

    // Components tick with alternating step sizes (device at dt, box
    // controller remainders), so a single cached dt would re-derive
    // the substep count every call; a two-entry MRU covers the
    // ping-pong without thrash.
    struct SubstepEntry
    {
        double dtSec = -1.0; // dt the substep count was sized for
        int substeps = 1;
    };
    SubstepEntry _substepCache[2];
    int _substepMru = 0;

    // Analytic solver state, rebuilt lazily per topology. Held by
    // shared_ptr so same-topology networks in a cohort can alias one
    // decomposition; a rebuild allocates fresh when shared so a donor
    // is never clobbered under its other users.
    std::shared_ptr<FastThermalSolver> _fast;
    bool _fastDirty = true;
    bool _fastUsable = false;
    std::vector<double> _fastTemps;  // gather/scatter scratch
    std::vector<double> _fastPowers; // gather scratch

    void checkNode(ThermalNodeId node) const;
    void refreshTopologyCache();
    double minTimeConstant() const;
    int substepsFor(double h_total);
    void gatherFastState();
};

} // namespace pvar

#endif // PVAR_THERMAL_RC_NETWORK_HH
