/**
 * @file
 * Unit and property tests for the Die electrical model.
 */

#include <cmath>
#include <gtest/gtest.h>

#include "silicon/die.hh"
#include "silicon/process_node.hh"

namespace pvar
{
namespace
{

Die
typicalDie()
{
    return Die(node28nmHPm(), DieParams{"typ", 1.0, 1.0, 0.0});
}

TEST(Die, RejectsNonPositiveFactors)
{
    EXPECT_DEATH(
        { Die d(node28nmHPm(), DieParams{"bad", 0.0, 1.0, 0.0}); }, "");
    EXPECT_DEATH(
        { Die d(node28nmHPm(), DieParams{"bad", 1.0, -1.0, 0.0}); }, "");
}

TEST(Die, FasterFactorMeansHigherFmax)
{
    Die slow(node28nmHPm(), DieParams{"s", 0.95, 1.0, 0.0});
    Die fast(node28nmHPm(), DieParams{"f", 1.10, 1.0, 0.0});
    EXPECT_GT(fast.fmaxAt(Volts(1.0)), slow.fmaxAt(Volts(1.0)));
    EXPECT_LT(fast.minVoltageFor(MegaHertz(2265)),
              slow.minVoltageFor(MegaHertz(2265)));
}

TEST(Die, VthOffsetShiftsThreshold)
{
    Die low(node28nmHPm(), DieParams{"l", 1.0, 1.0, -0.02});
    Die high(node28nmHPm(), DieParams{"h", 1.0, 1.0, +0.02});
    EXPECT_GT(low.fmaxAt(Volts(0.9)), high.fmaxAt(Volts(0.9)));
    EXPECT_DOUBLE_EQ(high.vThreshold().value(),
                     node28nmHPm().vThreshold.value() + 0.02);
}

TEST(Die, PassesAtIsConsistentWithFmax)
{
    Die d = typicalDie();
    MegaHertz fmax = d.fmaxAt(Volts(1.0));
    EXPECT_TRUE(d.passesAt(fmax * 0.99, Volts(1.0)));
    EXPECT_FALSE(d.passesAt(fmax * 1.01, Volts(1.0)));
}

TEST(Die, LeakageMonotonicInTemperature)
{
    Die d = typicalDie();
    double prev = 0.0;
    for (double t = 0.0; t <= 110.0; t += 5.0) {
        double i = d.leakageCurrent(Volts(1.0), Celsius(t)).value();
        EXPECT_GT(i, prev) << "at T=" << t;
        prev = i;
    }
}

TEST(Die, LeakageMonotonicInVoltage)
{
    Die d = typicalDie();
    double prev = 0.0;
    for (double v = 0.6; v <= 1.2; v += 0.05) {
        double i = d.leakageCurrent(Volts(v), Celsius(50)).value();
        EXPECT_GT(i, prev) << "at V=" << v;
        prev = i;
    }
}

TEST(Die, LeakageScalesWithFactorAndSize)
{
    ProcessNode node = node28nmHPm();
    Die base(node, DieParams{"b", 1.0, 1.0, 0.0});
    Die leaky(node, DieParams{"l", 1.0, 2.0, 0.0});
    double i_base = base.leakageCurrent(Volts(1.0), Celsius(60)).value();
    double i_leaky = leaky.leakageCurrent(Volts(1.0), Celsius(60)).value();
    EXPECT_NEAR(i_leaky / i_base, 2.0, 1e-9);

    double i_half =
        base.leakageCurrent(Volts(1.0), Celsius(60), 0.5).value();
    EXPECT_NEAR(i_half / i_base, 0.5, 1e-9);
}

TEST(Die, LeakageReferencePoint)
{
    // At (vNominal, tRef) a nominal die draws exactly leakRef.
    ProcessNode node = node28nmHPm();
    Die d(node, DieParams{"t", 1.0, 1.0, 0.0});
    EXPECT_NEAR(d.leakageCurrent(node.vNominal, node.tRef).value(),
                node.leakRef.value(), 1e-12);
}

TEST(Die, LeakageTemperatureEFold)
{
    ProcessNode node = node28nmHPm();
    Die d(node, DieParams{"t", 1.0, 1.0, 0.0});
    double i1 = d.leakageCurrent(node.vNominal, node.tRef).value();
    double i2 = d.leakageCurrent(node.vNominal,
                                 node.tRef + Celsius(node.leakTempSlope))
                    .value();
    EXPECT_NEAR(i2 / i1, std::exp(1.0), 1e-9);
}

TEST(Die, LeakageClampsExtremeInputs)
{
    Die d = typicalDie();
    double at_limit = d.leakageCurrent(Volts(1.0), Celsius(200)).value();
    double beyond = d.leakageCurrent(Volts(1.0), Celsius(5000)).value();
    EXPECT_DOUBLE_EQ(at_limit, beyond);
    EXPECT_TRUE(std::isfinite(beyond));
}

TEST(Die, DynamicPowerQuadraticInVoltage)
{
    Die d = typicalDie();
    double p1 = d.dynamicPower(Volts(0.5), MegaHertz(1000)).value();
    double p2 = d.dynamicPower(Volts(1.0), MegaHertz(1000)).value();
    EXPECT_NEAR(p2 / p1, 4.0, 1e-9);
}

TEST(Die, DynamicPowerLinearInFrequencyActivitySize)
{
    Die d = typicalDie();
    double base = d.dynamicPower(Volts(1.0), MegaHertz(1000)).value();
    EXPECT_NEAR(
        d.dynamicPower(Volts(1.0), MegaHertz(2000)).value() / base, 2.0,
        1e-9);
    EXPECT_NEAR(
        d.dynamicPower(Volts(1.0), MegaHertz(1000), 0.5).value() / base,
        0.5, 1e-9);
    EXPECT_NEAR(d.dynamicPower(Volts(1.0), MegaHertz(1000), 1.0, 2.0)
                        .value() /
                    base,
                2.0, 1e-9);
}

TEST(Die, LeakagePowerIsVTimesI)
{
    Die d = typicalDie();
    Volts v(0.95);
    Celsius t(55);
    EXPECT_NEAR(d.leakagePower(v, t).value(),
                v.value() * d.leakageCurrent(v, t).value(), 1e-12);
}

/** Property: the speed/leakage/power relations hold on every node. */
class DieNodeSweep
    : public ::testing::TestWithParam<ProcessNode (*)()>
{
};

TEST_P(DieNodeSweep, CoupledSpeedAndLeakInvariants)
{
    ProcessNode node = GetParam()();
    Die d(node, DieParams{"x", 1.0, 1.0, 0.0});

    // fmax at vMax must exceed fmax at vMin.
    EXPECT_GT(d.fmaxAt(node.vMax), d.fmaxAt(node.vMin));

    // Leakage at vMax/hot must exceed leakage at vMin/cold.
    EXPECT_GT(d.leakageCurrent(node.vMax, Celsius(90)).value(),
              d.leakageCurrent(node.vMin, Celsius(20)).value());

    // Dynamic power is positive at any in-range OPP.
    EXPECT_GT(d.dynamicPower(node.vNominal, MegaHertz(1000)).value(),
              0.0);
}

INSTANTIATE_TEST_SUITE_P(Nodes, DieNodeSweep,
                         ::testing::Values(&node28nmHPm, &node20nmSoC,
                                           &node14nmFinFET));

} // namespace
} // namespace pvar
