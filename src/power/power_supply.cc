#include "power/power_supply.hh"

namespace pvar
{

Amps
PowerSupply::operatingCurrent(Watts demand) const
{
    if (demand.value() <= 0.0)
        return Amps(0.0);

    // Fixed-point iteration: I_{k+1} = P / V(I_k). The source
    // impedance of both supplies is far below the load impedance, so
    // a handful of iterations suffices.
    Amps i(demand.value() / terminalVoltage(Amps(0.0)).value());
    for (int k = 0; k < 8; ++k) {
        Volts v = terminalVoltage(i);
        if (v.value() <= 0.1)
            return i; // collapsed supply; caller will notice
        i = demand / v;
    }
    return i;
}

} // namespace pvar
