#include "store/result_cache.hh"

#include "report/spec_json.hh"
#include "sim/logging.hh"
#include "sim/strfmt.hh"

namespace pvar
{

namespace
{

const char *
modeName(WorkloadMode mode)
{
    switch (mode) {
      case WorkloadMode::Unconstrained:
        return "unconstrained";
      case WorkloadMode::FixedFrequency:
        return "fixed_frequency";
    }
    panic("modeName: bad WorkloadMode");
}

const char *
supplyName(SupplyChoice supply)
{
    switch (supply) {
      case SupplyChoice::MonsoonNominal:
        return "monsoon_nominal";
      case SupplyChoice::MonsoonExplicit:
        return "monsoon_explicit";
      case SupplyChoice::Battery:
        return "battery";
    }
    panic("supplyName: bad SupplyChoice");
}

void
putNum(JsonWriter &w, const char *key, double v)
{
    w.key(key).rawValue(jsonExactDouble(v));
}

void
putTime(JsonWriter &w, const char *key, Time t)
{
    w.key(key).value(static_cast<long long>(t.toUsec()));
}

/**
 * Serialize every field of the experiment configuration. Exhaustive
 * on purpose: a field left out of the key would let two *different*
 * computations alias to one cache entry.
 */
void
writeExperimentConfig(JsonWriter &w, const ExperimentConfig &cfg)
{
    w.beginObject();
    w.key("mode").value(modeName(cfg.mode));
    putNum(w, "fixed_frequency_mhz", cfg.fixedFrequency.value());
    w.key("iterations").value(cfg.iterations);

    const AccubenchConfig &ab = cfg.accubench;
    w.key("accubench").beginObject();
    putTime(w, "warmup_us", ab.warmupDuration);
    putTime(w, "workload_us", ab.workloadDuration);
    putNum(w, "cooldown_target_c", ab.cooldownTarget.value());
    putTime(w, "cooldown_poll_us", ab.cooldownPoll);
    putTime(w, "poll_wake_span_us", ab.pollWakeSpan);
    putTime(w, "cooldown_timeout_us", ab.cooldownTimeout);
    w.key("workload").beginObject();
    w.key("name").value(ab.workload.name);
    putNum(w, "utilization", ab.workload.utilization);
    putTime(w, "burst_period_us", ab.workload.burstPeriod);
    putNum(w, "burst_duty", ab.workload.burstDuty);
    w.endObject();
    w.endObject();

    const ThermaboxParams &tb = cfg.thermabox;
    w.key("thermabox").beginObject();
    putNum(w, "target_c", tb.target.value());
    putNum(w, "deadband", tb.deadband);
    putNum(w, "room_c", tb.room.value());
    putNum(w, "air_capacitance", tb.airCapacitance);
    putNum(w, "wall_capacitance", tb.wallCapacitance);
    putNum(w, "air_to_wall", tb.airToWall);
    putNum(w, "wall_to_room", tb.wallToRoom);
    putNum(w, "lamp_power", tb.lampPower);
    putNum(w, "compressor_power", tb.compressorPower);
    putNum(w, "actuator_air_fraction", tb.actuatorAirFraction);
    putTime(w, "probe_tau_us", tb.probeTau);
    putTime(w, "controller_period_us", tb.controllerPeriod);
    putTime(w, "stability_dwell_us", tb.stabilityDwell);
    w.endObject();

    w.key("supply").value(supplyName(cfg.supply));
    putNum(w, "monsoon_v", cfg.monsoonVoltage.value());
    putNum(w, "battery_soc", cfg.batterySoc);
    putTime(w, "dt_us", cfg.dt);
    // Solvers agree to tolerance, not bit-for-bit, so a cached stepped
    // result must never satisfy a fast-solver request (or vice versa).
    w.key("solver").value(solverKindName(cfg.solver));
    w.key("soak_first").value(cfg.soakFirst);
    w.key("retry_salt")
        .value(static_cast<long long>(cfg.retrySalt));
    // cfg.livePoints / cfg.livePointKey are deliberately absent: a
    // live-point-warm run is byte-identical to a cold one (batch.cc
    // rolls back on any mismatch), so both must alias one entry.
    w.endObject();
}

void
writeUnit(JsonWriter &w, const UnitCorner &u)
{
    w.beginObject();
    w.key("id").value(u.id);
    putNum(w, "corner", u.corner);
    putNum(w, "leak_residual", u.leakResidual);
    putNum(w, "vth_offset", u.vthOffset);
    w.key("bin").value(u.bin);
    w.endObject();
}

} // namespace

std::string
experimentKeyText(const RegistryEntry &entry, std::size_t unit_index,
                  const ExperimentConfig &cfg)
{
    JsonWriter w;
    w.beginObject();
    // The spec serializer is the one fleet files round-trip through,
    // so it is exhaustive and exact by construction.
    w.key("spec").rawValue(toJson(entry.spec));
    w.key("unit");
    writeUnit(w, entry.units.at(unit_index));
    w.key("experiment");
    writeExperimentConfig(w, cfg);
    w.endObject();
    return w.str();
}

std::string
livePointKeyText(const RegistryEntry &entry, std::size_t unit_index,
                 const ExperimentConfig &cfg)
{
    JsonWriter w;
    w.beginObject();
    w.key("live_point")
        .rawValue(experimentKeyText(entry, unit_index, cfg));
    w.endObject();
    return w.str();
}

std::string
contentDigest(const std::string &text)
{
    // Two decorrelated FNV-1a passes; the canonical text is verified
    // on every hit, so a digest collision degrades to a miss rather
    // than a wrong result.
    constexpr std::uint64_t prime = 1099511628211ull;
    std::uint64_t h1 = 14695981039346656037ull;
    for (unsigned char c : text) {
        h1 ^= c;
        h1 *= prime;
    }
    std::uint64_t h2 = h1 ^ 0x9e3779b97f4a7c15ull;
    for (unsigned char c : text) {
        h2 ^= c;
        h2 *= prime;
    }
    return strfmt("%016llx%016llx",
                  static_cast<unsigned long long>(h1),
                  static_cast<unsigned long long>(h2));
}

ResultCache::ResultCache(std::size_t max_entries)
    : _capacity(max_entries > 0 ? max_entries : 1)
{
}

ExperimentResult
ResultCache::getOrCompute(const RegistryEntry &entry,
                          std::size_t unit_index,
                          const ExperimentConfig &cfg,
                          const std::function<ExperimentResult()> &compute)
{
    std::string key_text = experimentKeyText(entry, unit_index, cfg);
    std::string digest = contentDigest(key_text);

    {
        std::lock_guard<std::mutex> lock(_mutex);
        auto it = _index.find(digest);
        if (it != _index.end() && it->second->keyText == key_text) {
            ++_hits;
            _lru.splice(_lru.begin(), _lru, it->second);
            debug("result-cache: hit %s", digest.c_str());
            return it->second->result;
        }
        ++_misses;
    }

    // Simulate outside the lock; concurrent misses on the same key
    // both compute (identical results by determinism) instead of one
    // worker blocking the rest.
    ExperimentResult result = compute();

    std::lock_guard<std::mutex> lock(_mutex);
    insertLocked(std::move(digest), std::move(key_text), result);
    return result;
}

bool
ResultCache::lookup(const RegistryEntry &entry, std::size_t unit_index,
                    const ExperimentConfig &cfg, ExperimentResult &out)
{
    std::string key_text = experimentKeyText(entry, unit_index, cfg);
    std::string digest = contentDigest(key_text);

    std::lock_guard<std::mutex> lock(_mutex);
    auto it = _index.find(digest);
    if (it != _index.end() && it->second->keyText == key_text) {
        ++_hits;
        _lru.splice(_lru.begin(), _lru, it->second);
        debug("result-cache: hit %s", digest.c_str());
        out = it->second->result;
        return true;
    }
    ++_misses;
    return false;
}

void
ResultCache::insert(const RegistryEntry &entry, std::size_t unit_index,
                    const ExperimentConfig &cfg,
                    const ExperimentResult &result)
{
    std::string key_text = experimentKeyText(entry, unit_index, cfg);
    std::string digest = contentDigest(key_text);

    std::lock_guard<std::mutex> lock(_mutex);
    insertLocked(std::move(digest), std::move(key_text), result);
}

void
ResultCache::insertLocked(std::string digest, std::string key_text,
                          const ExperimentResult &result)
{
    auto it = _index.find(digest);
    if (it != _index.end()) {
        // Concurrent miss already inserted (or a digest collision is
        // being replaced): refresh the entry in place.
        it->second->keyText = std::move(key_text);
        it->second->result = result;
        _lru.splice(_lru.begin(), _lru, it->second);
        return;
    }
    _lru.push_front(Node{digest, std::move(key_text), result});
    _index.emplace(std::move(digest), _lru.begin());
    while (_lru.size() > _capacity) {
        _index.erase(_lru.back().digest);
        _lru.pop_back();
        ++_evictions;
    }
}

ResultCacheStats
ResultCache::stats() const
{
    std::lock_guard<std::mutex> lock(_mutex);
    ResultCacheStats s;
    s.hits = _hits;
    s.misses = _misses;
    s.evictions = _evictions;
    s.entries = _lru.size();
    s.capacity = _capacity;
    return s;
}

void
ResultCache::clear()
{
    std::lock_guard<std::mutex> lock(_mutex);
    _lru.clear();
    _index.clear();
}

} // namespace pvar
