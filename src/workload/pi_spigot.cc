#include "workload/pi_spigot.hh"

#include <vector>

#include "sim/logging.hh"

namespace pvar
{

std::string
spigotPiDigits(int ndigits)
{
    if (ndigits < 1)
        fatal("spigotPiDigits: need at least one digit");

    // Rabinowitz & Wagon, "A spigot algorithm for the digits of pi",
    // Amer. Math. Monthly 102(3), 1995. The mixed-radix representation
    // needs ~10n/3 terms for n digits; a small margin absorbs the
    // predigit pipeline.
    const int len = ndigits * 10 / 3 + 16;
    std::vector<std::int64_t> a(static_cast<std::size_t>(len), 2);

    std::string out;
    out.reserve(static_cast<std::size_t>(ndigits) + 8);

    int nines = 0;
    int predigit = 0;
    bool have_predigit = false;

    // Each pass emits (on average) one digit; iterate with margin and
    // truncate to the requested count at the end.
    for (int pass = 0; pass < ndigits + 4; ++pass) {
        std::int64_t carry = 0;
        for (int i = len - 1; i >= 0; --i) {
            std::int64_t x = 10 * a[static_cast<std::size_t>(i)] +
                             carry * (i + 1);
            a[static_cast<std::size_t>(i)] = x % (2 * i + 1);
            carry = x / (2 * i + 1);
        }
        a[0] = carry % 10;
        int q = static_cast<int>(carry / 10);

        if (q == 9) {
            ++nines;
        } else if (q == 10) {
            // Carry ripples through the buffered 9s.
            out += static_cast<char>('0' + predigit + 1);
            out.append(static_cast<std::size_t>(nines), '0');
            nines = 0;
            predigit = 0;
            have_predigit = true;
        } else {
            if (have_predigit)
                out += static_cast<char>('0' + predigit);
            out.append(static_cast<std::size_t>(nines), '9');
            nines = 0;
            predigit = q;
            have_predigit = true;
        }
        if (static_cast<int>(out.size()) >= ndigits)
            break;
    }
    if (static_cast<int>(out.size()) < ndigits)
        out += static_cast<char>('0' + predigit);

    if (static_cast<int>(out.size()) < ndigits)
        panic("spigotPiDigits: produced %zu of %d digits", out.size(),
              ndigits);
    out.resize(static_cast<std::size_t>(ndigits));
    return out;
}

std::uint64_t
piIterationChecksum()
{
    std::string digits = spigotPiDigits(paperPiDigits);
    // FNV-1a over the digit characters.
    std::uint64_t h = 1469598103934665603ULL;
    for (char c : digits) {
        h ^= static_cast<std::uint64_t>(static_cast<unsigned char>(c));
        h *= 1099511628211ULL;
    }
    return h;
}

} // namespace pvar
