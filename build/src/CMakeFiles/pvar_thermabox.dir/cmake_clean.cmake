file(REMOVE_RECURSE
  "CMakeFiles/pvar_thermabox.dir/thermabox/thermabox.cc.o"
  "CMakeFiles/pvar_thermabox.dir/thermabox/thermabox.cc.o.d"
  "libpvar_thermabox.a"
  "libpvar_thermabox.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pvar_thermabox.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
